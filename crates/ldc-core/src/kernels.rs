//! Shared solver kernels: packed color sets and the per-solve type cache.
//!
//! The round engine stopped being the bottleneck in PR 2 — on dense
//! instances virtually all wall time is spent in per-node solver kernels
//! (`conflict_weight` merges, `SeededSubset::select` draws, per-color
//! membership probes). The Maus–Tonoyan machinery behind Lemma 3.5 says
//! candidate sets are a pure function of a node's **type**
//! `(init_color, list, attempt)`, and conflict verdicts are pure functions
//! of the two candidate sets involved — so in dense instances (few
//! distinct types, or many repeated pairwise checks) almost all of that
//! work recomputes identical answers. This module removes the
//! recomputation without changing a single output byte:
//!
//! * [`PackedSet`] — a bitset over the (offset-normalized) color span of a
//!   sorted list. Membership is O(1) (vs. a binary search), `μ_g` is a
//!   masked popcount over the `[x−g, x+g]` window, and `g = 0`
//!   intersection weight is a word-parallel popcount of `A & B`.
//! * [`conflict_weight_at_least`] — the general `g ≥ 0` conflict test as a
//!   two-pointer merge that exits as soon as the running weight reaches
//!   `τ` (the exact weight above the threshold is never needed).
//! * [`TypeCache`] — a per-solve memo: color lists are interned by
//!   fingerprint (collision-checked, so a hash collision can only cost a
//!   missed hit, never a wrong answer), `SeededSubset::select` runs once
//!   per `(init_color, list, k, attempt)` type, and pairwise
//!   `τ&g`-conflict verdicts are cached per unordered candidate-set pair.
//!   Candidate sets produced by the cache are shared `Arc`s, so a set's
//!   address is a stable identity for the lifetime of the solve (the
//!   cache holds every `Arc` it ever returned) and both the packed-set
//!   table and the verdict table key on it.
//!
//! * Batched entry points ([`TypeCache::select_batch`],
//!   [`TypeCache::conflict_batch`], [`TypeCache::best_color_batch`]) that
//!   fan the *pure* miss computations out over the `ldc_sim::pool`
//!   workers and publish results in request order — byte-identical to
//!   the equivalent sequence of single calls at every thread count.
//! * [`SharedTypeCache`] — an optional fleet-wide layer behind a sharded
//!   lock map: selections and conflict verdicts interned by *content*
//!   keys (strategy seed, list/set bytes, thresholds), so same-shaped
//!   jobs in a batch warm each other. A shared hit never changes private
//!   counter streams — it only skips recomputation.
//!
//! Every kernel has a naive counterpart in [`crate::conflict`] /
//! [`crate::cover`]; `KernelMode::Reference` routes through those
//! verbatim, and the seeded equivalence suite asserts byte-identical
//! solver outputs between the two modes (`tests/kernels.rs`).

use crate::conflict::tau_g_conflict;
use crate::cover::{list_fingerprint, SeededSubset};
use crate::problem::Color;
use ldc_sim::pool::{pool_execute, DisjointChunks, MAX_CHUNKS};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex};

/// A pair of interned candidate sets, as gathered for
/// [`TypeCache::conflict_batch`] — both halves are `Arc` clones of lists
/// previously returned by the selection kernels, so a batch holds them
/// without copying color data.
pub type ListPair = (Arc<[Color]>, Arc<[Color]>);

/// Which kernel implementations a solver run uses.
///
/// `Fast` is the default everywhere; `Reference` re-routes every kernel
/// through the naive implementations with no memoization, for differential
/// testing (outputs must be byte-identical) and for recording the pre-cache
/// baseline in `BENCH_solver.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Packed sets + type-keyed memoization (production default).
    #[default]
    Fast,
    /// Naive kernels, no memoization (differential baseline).
    Reference,
}

/// A bitset over the color span of a sorted list, offset-normalized so
/// that the base is a multiple of 64 — two packed sets over the same color
/// space are therefore always word-aligned and intersection reduces to
/// `popcount(A & B)` over the overlapping word range.
#[derive(Debug, Clone)]
pub struct PackedSet {
    /// Base color of word 0 (always a multiple of 64).
    offset: u64,
    words: Vec<u64>,
    len: u64,
}

impl PackedSet {
    /// Build from a sorted, deduplicated color slice.
    pub fn from_sorted(colors: &[Color]) -> Self {
        debug_assert!(colors.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        let offset = colors.first().map_or(0, |&c| c & !63);
        let span = colors.last().map_or(0, |&c| c - offset + 1);
        let mut words = vec![0u64; span.div_ceil(64) as usize];
        for &c in colors {
            let r = c - offset;
            words[(r / 64) as usize] |= 1u64 << (r % 64);
        }
        PackedSet {
            offset,
            words,
            len: colors.len() as u64,
        }
    }

    /// Number of colors in the set.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) membership test (the packed replacement for `binary_search`).
    pub fn contains(&self, c: Color) -> bool {
        if c < self.offset {
            return false;
        }
        let r = c - self.offset;
        let w = (r / 64) as usize;
        w < self.words.len() && self.words[w] >> (r % 64) & 1 == 1
    }

    /// `|{c ∈ self : lo ≤ c ≤ hi}|` as a masked popcount — the packed
    /// `μ_g(x, ·)` with `lo = x−g`, `hi = x+g` (see [`crate::conflict::mu_g`]).
    pub fn count_range(&self, lo: Color, hi: Color) -> u64 {
        if self.words.is_empty() || hi < self.offset {
            return 0;
        }
        let top = self.offset + 64 * self.words.len() as u64 - 1;
        let lo = lo.max(self.offset);
        let hi = hi.min(top);
        if lo > hi {
            return 0;
        }
        let (rl, rh) = (lo - self.offset, hi - self.offset);
        let (wl, wh) = ((rl / 64) as usize, (rh / 64) as usize);
        let mask_lo = u64::MAX << (rl % 64);
        // `rh % 64 == 63` must keep all bits; shift by 63 − pos, never 64.
        let mask_hi = u64::MAX >> (63 - rh % 64);
        if wl == wh {
            return (self.words[wl] & mask_lo & mask_hi).count_ones() as u64;
        }
        let mut total = (self.words[wl] & mask_lo).count_ones() as u64;
        for w in &self.words[wl + 1..wh] {
            total += w.count_ones() as u64;
        }
        total + (self.words[wh] & mask_hi).count_ones() as u64
    }

    /// `|A ∩ B|` by word-parallel popcount — `conflict_weight(A, B, 0)`.
    pub fn intersection_size(&self, other: &Self) -> u64 {
        let (a, b) = if self.offset <= other.offset {
            (self, other)
        } else {
            (other, self)
        };
        // Offsets are multiples of 64, so the shift is whole words.
        let shift = ((b.offset - a.offset) / 64) as usize;
        if shift >= a.words.len() {
            return 0;
        }
        a.words[shift..]
            .iter()
            .zip(&b.words)
            .map(|(x, y)| (x & y).count_ones() as u64)
            .sum()
    }

    /// Words this set occupies (cost estimate for the adaptive conflict
    /// kernel).
    fn word_count(&self) -> usize {
        self.words.len()
    }
}

/// `conflict_weight(c1, c2, g) ≥ tau`, computed by a single merge-style
/// sweep over both sorted lists that stops the moment the running weight
/// reaches `tau` — the verification loops only ever need the verdict, not
/// the exact weight. Equivalent to [`tau_g_conflict`] (property-tested).
pub fn conflict_weight_at_least(c1: &[Color], c2: &[Color], tau: u64, g: u64) -> bool {
    if tau == 0 {
        return true;
    }
    let mut lo = 0usize;
    let mut hi = 0usize;
    let mut total = 0u64;
    for &x in c1 {
        let lbound = x.saturating_sub(g);
        let ubound = x.saturating_add(g);
        while lo < c2.len() && c2[lo] < lbound {
            lo += 1;
        }
        if hi < lo {
            hi = lo;
        }
        while hi < c2.len() && c2[hi] <= ubound {
            hi += 1;
        }
        total += (hi - lo) as u64;
        if total >= tau {
            return true;
        }
    }
    false
}

/// Definition 3.3 with early exits on both levels: member conflicts are
/// decided by [`conflict_weight_at_least`] and the scan stops at `τ'`
/// conflicting members. Equivalent to [`crate::conflict::psi_g`].
pub fn psi_g_fast(k1: &[Vec<Color>], k2: &[Vec<Color>], tau_prime: u64, tau: u64, g: u64) -> bool {
    let mut conflicting = 0u64;
    for c in k1 {
        if k2.iter().any(|c2| conflict_weight_at_least(c, c2, tau, g)) {
            conflicting += 1;
            if conflicting >= tau_prime {
                return true;
            }
        }
    }
    false
}

/// Hit/miss accounting of a [`TypeCache`].
///
/// The call/miss/distinct/eviction counters are deterministic — pure
/// functions of the instance and the request sequence, so they byte-diff
/// across runs, thread counts, and with the shared cache on or off
/// (experiment E18 tabulates them). `shared_hits` / `shared_misses`
/// split the same private misses by whether the fleet-shared cache
/// resolved them; that split depends on job scheduling once fleet shards
/// overlap, so it is kept out of byte-diffed artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Candidate-set selections requested.
    pub select_calls: u64,
    /// Selections actually computed (misses; hits = calls − misses).
    pub select_misses: u64,
    /// Pairwise `τ&g`-conflict verdicts requested.
    pub conflict_calls: u64,
    /// Verdicts actually computed.
    pub conflict_misses: u64,
    /// Distinct interned `(list)` types seen.
    pub distinct_lists: u64,
    /// Distinct candidate sets packed.
    pub distinct_sets: u64,
    /// Interned lists dropped by capacity-bound epoch resets.
    pub evictions: u64,
    /// Private misses resolved from the fleet-shared cache
    /// (scheduling-dependent; see the struct docs).
    pub shared_hits: u64,
    /// Private misses the fleet-shared cache also missed (computed
    /// locally, then published to it).
    pub shared_misses: u64,
}

impl KernelStats {
    /// Fold another cache's counters into this one (a Theorem 1.1 solve
    /// aggregates the auxiliary instance's cache and the main one).
    pub fn absorb(&mut self, other: &KernelStats) {
        self.select_calls += other.select_calls;
        self.select_misses += other.select_misses;
        self.conflict_calls += other.conflict_calls;
        self.conflict_misses += other.conflict_misses;
        self.distinct_lists += other.distinct_lists;
        self.distinct_sets += other.distinct_sets;
        self.evictions += other.evictions;
        self.shared_hits += other.shared_hits;
        self.shared_misses += other.shared_misses;
    }
}

/// Key of a memoized selection: the node type `(init_color, list)` —
/// with the list replaced by its interned id — plus `(k, attempt)`.
type SelectKey = (u64, u32, u64, u32);

/// Deterministic FxHash-style hasher for the kernel maps. The shared
/// cache must pick the same shard for the same key in every process (so
/// no `RandomState`), and the per-call memo probes are small fixed-shape
/// keys where SipHash costs more than the bucket walk it guards.
#[derive(Default)]
pub struct DetHasher(u64);

impl Hasher for DetHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(23);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// Hash map with deterministic, cross-process-stable hashing.
type DetMap<K, V> = HashMap<K, V, BuildHasherDefault<DetHasher>>;

/// Default bound on interned lists per [`TypeCache`]: generous enough
/// that no benchmark workload short of the adversarial all-distinct-lists
/// one ever trips it, small enough that a long fleet run cannot leak.
pub const DEFAULT_LIST_CAPACITY: usize = 1 << 15;

/// Work threshold (in total color slots) below which a batched kernel
/// phase runs inline — the same idiom as the engine's slots-per-chunk
/// constant: fan-out only pays once a phase carries real volume.
const PAR_WORK_THRESHOLD: u64 = 1 << 15;

/// How a solve runs its kernels: implementation mode, worker threads for
/// the batched phases, the interned-list capacity bound, and an optional
/// fleet-shared cache. `KernelConfig::from(mode)` reproduces the
/// historical sequential, private-cache behavior exactly.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Kernel implementations (fast vs. reference).
    pub mode: KernelMode,
    /// Worker threads for the batched kernel phases (1 = sequential; the
    /// outputs are byte-identical at every value).
    pub threads: usize,
    /// Interned-list capacity; reaching it triggers a deterministic
    /// epoch reset (see [`TypeCache`]).
    pub list_capacity: usize,
    /// Fleet-shared kernel cache, if any.
    pub shared: Option<Arc<SharedTypeCache>>,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            mode: KernelMode::default(),
            threads: 1,
            list_capacity: DEFAULT_LIST_CAPACITY,
            shared: None,
        }
    }
}

impl From<KernelMode> for KernelConfig {
    fn from(mode: KernelMode) -> Self {
        KernelConfig {
            mode,
            ..KernelConfig::default()
        }
    }
}

impl KernelConfig {
    /// Set the worker-thread count for the batched phases.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the interned-list capacity bound.
    pub fn with_list_capacity(mut self, cap: usize) -> Self {
        self.list_capacity = cap.max(1);
        self
    }

    /// Attach a fleet-shared cache.
    pub fn with_shared(mut self, shared: Arc<SharedTypeCache>) -> Self {
        self.shared = Some(shared);
        self
    }
}

/// Merged totals of a [`SharedTypeCache`] (shards folded in index order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries currently resident (selections + verdicts).
    pub entries: u64,
    /// Entries dropped by per-shard epoch resets.
    pub evictions: u64,
}

/// Shared selection key: `(strategy seed, init_color, k, attempt, list)`
/// — everything `SeededSubset::select` is a function of, with the list
/// compared by contents (`Arc<[Color]>` hashes and compares through the
/// slice), so a hit is always byte-identical to recomputation.
type SharedSelectKey = (u64, u64, u64, u32, Arc<[Color]>);

/// Shared verdict key: `(τ, g, smaller set, larger set)` with the pair
/// ordered lexicographically by contents (`conflict_weight` is
/// symmetric).
type SharedVerdictKey = (u64, u64, Arc<[Color]>, Arc<[Color]>);

#[derive(Default)]
struct SharedShard {
    select: DetMap<SharedSelectKey, Arc<[Color]>>,
    verdicts: DetMap<SharedVerdictKey, bool>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A fleet-wide kernel cache: candidate-set selections and conflict
/// verdicts interned behind a sharded lock map so same-shaped jobs in a
/// batch warm each other's subset-selection and conflict-verdict
/// entries.
///
/// Keys embed everything the kernels are functions of (see
/// `SharedSelectKey` / `SharedVerdictKey`), so one cache can serve
/// solver invocations with different seeds, thresholds, and spacings.
/// The shard of a key is its deterministic [`DetHasher`] hash modulo the
/// shard count; each shard's maps are capacity-bounded with a clear-all
/// epoch reset, and [`SharedTypeCache::snapshot`] merges per-shard stats
/// in shard-index order.
///
/// The shared layer never alters private [`KernelStats`] accounting: a
/// shared hit still counts as a private miss (only the recomputation is
/// skipped and the result is installed into the private memo), so every
/// per-job stat row byte-matches with the shared cache on or off. Only
/// the `shared_hits` / `shared_misses` split — and this cache's own
/// [`SharedCacheStats`] — reveal sharing, and those are
/// scheduling-dependent once fleet shards overlap in time.
pub struct SharedTypeCache {
    shards: Vec<Mutex<SharedShard>>,
    shard_capacity: usize,
}

impl std::fmt::Debug for SharedTypeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedTypeCache")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .finish()
    }
}

impl SharedTypeCache {
    /// A cache with `shards` lock shards, each holding at most
    /// `shard_capacity` entries per map (selections and verdicts are
    /// bounded independently; reaching a bound clears that map).
    pub fn new(shards: usize, shard_capacity: usize) -> Arc<Self> {
        Arc::new(SharedTypeCache {
            shards: (0..shards.clamp(1, 256))
                .map(|_| Mutex::new(SharedShard::default()))
                .collect(),
            shard_capacity: shard_capacity.max(1),
        })
    }

    /// The default fleet configuration: 16 shards × 2¹⁴ entries.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(16, 1 << 14)
    }

    fn hash_key<K: std::hash::Hash>(key: &K) -> u64 {
        let mut h = DetHasher::default();
        key.hash(&mut h);
        h.finish()
    }

    fn shard(&self, hash: u64) -> std::sync::MutexGuard<'_, SharedShard> {
        let i = (hash % self.shards.len() as u64) as usize;
        self.shards[i].lock().unwrap_or_else(|e| e.into_inner())
    }

    fn select_get(&self, key: &SharedSelectKey) -> Option<Arc<[Color]>> {
        let mut s = self.shard(Self::hash_key(key));
        match s.select.get(key) {
            Some(set) => {
                let set = set.clone();
                s.hits += 1;
                Some(set)
            }
            None => {
                s.misses += 1;
                None
            }
        }
    }

    fn select_put(&self, key: SharedSelectKey, set: Arc<[Color]>) {
        let cap = self.shard_capacity;
        let mut s = self.shard(Self::hash_key(&key));
        if s.select.len() >= cap {
            s.evictions += s.select.len() as u64;
            s.select.clear();
        }
        s.select.insert(key, set);
    }

    fn verdict_key(tau: u64, g: u64, a: &Arc<[Color]>, b: &Arc<[Color]>) -> SharedVerdictKey {
        if a.as_ref() <= b.as_ref() {
            (tau, g, a.clone(), b.clone())
        } else {
            (tau, g, b.clone(), a.clone())
        }
    }

    fn verdict_get(&self, key: &SharedVerdictKey) -> Option<bool> {
        let mut s = self.shard(Self::hash_key(key));
        match s.verdicts.get(key).copied() {
            Some(v) => {
                s.hits += 1;
                Some(v)
            }
            None => {
                s.misses += 1;
                None
            }
        }
    }

    fn verdict_put(&self, key: SharedVerdictKey, verdict: bool) {
        let cap = self.shard_capacity;
        let mut s = self.shard(Self::hash_key(&key));
        if s.verdicts.len() >= cap {
            s.evictions += s.verdicts.len() as u64;
            s.verdicts.clear();
        }
        s.verdicts.insert(key, verdict);
    }

    /// Merged totals over all shards, folded in shard-index order
    /// (deterministic once the fleet is quiescent).
    pub fn snapshot(&self) -> SharedCacheStats {
        let mut out = SharedCacheStats::default();
        for m in &self.shards {
            let s = m.lock().unwrap_or_else(|e| e.into_inner());
            out.hits += s.hits;
            out.misses += s.misses;
            out.entries += (s.select.len() + s.verdicts.len()) as u64;
            out.evictions += s.evictions;
        }
        out
    }
}

/// Chunk boundaries splitting `items` into `chunks` near-equal ranges.
fn chunk_bounds(items: usize, chunks: usize) -> Vec<usize> {
    (0..=chunks).map(|c| c * items / chunks).collect()
}

/// Per-solve memoization of the type-keyed solver kernels.
///
/// One cache serves one solver invocation (one `(seed, τ, g)` regime);
/// everything it returns is a pure function of its inputs, so routing a
/// solver through it cannot change any output byte — it only skips
/// recomputation. See the module docs for the keying discipline.
pub struct TypeCache {
    mode: KernelMode,
    strategy: SeededSubset,
    tau: u64,
    g: u64,
    /// Worker threads for the batched phases (1 = always inline).
    threads: usize,
    /// Interned-list capacity; reaching it resets the list epoch.
    list_capacity: usize,
    /// Bumped on every capacity-bound epoch reset.
    list_epoch: u64,
    /// Fleet-shared cache, consulted on private misses.
    shared: Option<Arc<SharedTypeCache>>,
    /// fingerprint → interned list ids with that fingerprint (equality is
    /// verified on lookup, so collisions cannot alias two types).
    list_ids: HashMap<u64, Vec<u32>>,
    list_store: Vec<Arc<[Color]>>,
    select_memo: HashMap<SelectKey, Arc<[Color]>>,
    /// `Arc` address → packed id. Valid because `arcs` pins every interned
    /// allocation for the cache's lifetime.
    packed_ids: HashMap<usize, u32>,
    packed: Vec<PackedSet>,
    arcs: Vec<Arc<[Color]>>,
    verdicts: HashMap<(u32, u32), bool>,
    /// Scratch for `select_into` (reused across every selection).
    scratch: Vec<Color>,
    /// Per-node scratch of the grouped frequency loops: packed ids of the
    /// undecided ports (sorted, then run-length grouped).
    group_scratch: Vec<u32>,
    /// Per-node scratch: sorted colors of decided relevant out-neighbors.
    decided_scratch: Vec<Color>,
    /// Per-node scratch: one running frequency per candidate color.
    freq_scratch: Vec<u64>,
    /// Counters (see [`KernelStats`]).
    pub stats: KernelStats,
}

impl TypeCache {
    /// A cache for one solve under `(strategy, τ, g)` with the default
    /// configuration for `mode` (sequential, private, default capacity).
    pub fn new(strategy: SeededSubset, tau: u64, g: u64, mode: KernelMode) -> Self {
        Self::with_config(strategy, tau, g, &KernelConfig::from(mode))
    }

    /// A cache for one solve under `(strategy, τ, g)` with an explicit
    /// [`KernelConfig`] (threads, list capacity, shared cache).
    pub fn with_config(strategy: SeededSubset, tau: u64, g: u64, cfg: &KernelConfig) -> Self {
        TypeCache {
            mode: cfg.mode,
            strategy,
            tau,
            g,
            threads: cfg.threads.max(1),
            list_capacity: cfg.list_capacity.max(1),
            list_epoch: 0,
            shared: cfg.shared.clone(),
            list_ids: HashMap::new(),
            list_store: Vec::new(),
            select_memo: HashMap::new(),
            packed_ids: HashMap::new(),
            packed: Vec::new(),
            arcs: Vec::new(),
            verdicts: HashMap::new(),
            scratch: Vec::new(),
            group_scratch: Vec::new(),
            decided_scratch: Vec::new(),
            freq_scratch: Vec::new(),
            stats: KernelStats::default(),
        }
    }

    /// The mode this cache runs in.
    pub fn mode(&self) -> KernelMode {
        self.mode
    }

    /// Candidate-set selection, memoized per `(type, k, attempt)`.
    ///
    /// Byte-identical to `Arc::from(strategy.select(...))` in both modes:
    /// `SeededSubset::select` is a pure function of exactly this key (plus
    /// the shared seed), so equal keys select equal sets.
    pub fn select(
        &mut self,
        init_color: u64,
        list: &[Color],
        k: usize,
        attempt: u32,
    ) -> Arc<[Color]> {
        self.stats.select_calls += 1;
        if self.mode == KernelMode::Reference {
            self.stats.select_misses += 1;
            self.strategy
                .select_into(init_color, list, k, attempt, &mut self.scratch);
            return Arc::from(&self.scratch[..]);
        }
        let list_id = self.intern_list(list);
        let key: SelectKey = (init_color, list_id, k as u64, attempt);
        if let Some(set) = self.select_memo.get(&key) {
            return set.clone();
        }
        self.stats.select_misses += 1;
        if let Some(shared) = self.shared.clone() {
            let skey: SharedSelectKey = (
                self.strategy.seed,
                init_color,
                k as u64,
                attempt,
                self.list_store[list_id as usize].clone(),
            );
            if let Some(set) = shared.select_get(&skey) {
                self.stats.shared_hits += 1;
                self.select_memo.insert(key, set.clone());
                return set;
            }
            self.stats.shared_misses += 1;
            self.strategy
                .select_into(init_color, list, k, attempt, &mut self.scratch);
            let set: Arc<[Color]> = Arc::from(&self.scratch[..]);
            self.select_memo.insert(key, set.clone());
            shared.select_put(skey, set.clone());
            return set;
        }
        self.strategy
            .select_into(init_color, list, k, attempt, &mut self.scratch);
        let set: Arc<[Color]> = Arc::from(&self.scratch[..]);
        self.select_memo.insert(key, set.clone());
        set
    }

    /// Pairwise `τ&g`-conflict verdict (Definition 3.2), cached per
    /// unordered set pair (`conflict_weight` is symmetric).
    pub fn conflict(&mut self, a: &Arc<[Color]>, b: &Arc<[Color]>) -> bool {
        self.stats.conflict_calls += 1;
        if self.mode == KernelMode::Reference {
            self.stats.conflict_misses += 1;
            return tau_g_conflict(a, b, self.tau, self.g);
        }
        let ia = self.packed_id(a);
        let ib = self.packed_id(b);
        let key = (ia.min(ib), ia.max(ib));
        if let Some(&v) = self.verdicts.get(&key) {
            return v;
        }
        self.stats.conflict_misses += 1;
        if let Some(shared) = self.shared.clone() {
            let skey = SharedTypeCache::verdict_key(self.tau, self.g, a, b);
            if let Some(v) = shared.verdict_get(&skey) {
                self.stats.shared_hits += 1;
                self.verdicts.insert(key, v);
                return v;
            }
            self.stats.shared_misses += 1;
            let verdict = self.compute_verdict(ia, ib);
            self.verdicts.insert(key, verdict);
            shared.verdict_put(skey, verdict);
            return verdict;
        }
        let verdict = self.compute_verdict(ia, ib);
        self.verdicts.insert(key, verdict);
        verdict
    }

    /// The raw verdict of two interned sets: adaptive popcount when `g`
    /// is 0 and the word spans are cheaper than the merge, the early-exit
    /// merge otherwise. Same verdict either way (both equal
    /// `conflict_weight ≥ τ`). `&self` only — callable from the parallel
    /// batch pass.
    fn compute_verdict(&self, ia: u32, ib: u32) -> bool {
        let (a, b) = (&self.arcs[ia as usize], &self.arcs[ib as usize]);
        if self.g == 0 {
            let (pa, pb) = (&self.packed[ia as usize], &self.packed[ib as usize]);
            let words = pa.word_count().min(pb.word_count());
            if words <= a.len() + b.len() {
                return pa.intersection_size(pb) >= self.tau;
            }
        }
        conflict_weight_at_least(a, b, self.tau, self.g)
    }

    /// Intern a candidate set by address and return its packed id
    /// (`Fast` mode only). The id indexes a dense table, so the hot
    /// per-color loops pay array indexing instead of hashing.
    pub fn packed_id(&mut self, set: &Arc<[Color]>) -> u32 {
        let key = Arc::as_ptr(set) as *const Color as usize;
        if let Some(&id) = self.packed_ids.get(&key) {
            return id;
        }
        let id = self.packed.len() as u32;
        self.packed.push(PackedSet::from_sorted(set));
        self.arcs.push(set.clone());
        self.packed_ids.insert(key, id);
        self.stats.distinct_sets += 1;
        id
    }

    /// O(1) membership in an interned set.
    pub fn packed_contains(&self, id: u32, x: Color) -> bool {
        self.packed[id as usize].contains(x)
    }

    /// Packed `μ_g(x, ·)` of an interned set (uses the cache's `g`).
    pub fn packed_mu(&self, id: u32, x: Color) -> u64 {
        self.packed[id as usize].count_range(x.saturating_sub(self.g), x.saturating_add(self.g))
    }

    /// The grouped frequency pass shared by the decision loops: given the
    /// relevant ports of one node — classified as either a decided color
    /// or an undecided neighbor's candidate set — compute, for each
    /// candidate color `x` of `cand`, the frequency
    /// `f(x) = #{decided ports: |c − x| ≤ g} + Σ_{undecided sets} μ_g(x, C)`
    /// and pick the minimizing `(f, x)` (ties toward the smaller color) —
    /// exactly the scan the naive loops perform, regrouped twice: ports
    /// sharing a candidate set contribute `multiplicity · μ_g` in one
    /// probe, and the set loop is outermost so each packed set streams
    /// through one frequency array instead of being re-probed per color
    /// (`f` is a commutative `u64` sum, so the regrouping is byte-exact).
    ///
    /// `ports` yields `(decided_color, candidate_set)` per relevant port.
    pub fn best_color<'p>(
        &mut self,
        cand: &[Color],
        ports: impl Iterator<Item = (Option<Color>, Option<&'p Arc<[Color]>>)>,
    ) -> Option<(u64, Color)> {
        let mut ids = std::mem::take(&mut self.group_scratch);
        let mut decided = std::mem::take(&mut self.decided_scratch);
        let mut freq = std::mem::take(&mut self.freq_scratch);
        ids.clear();
        decided.clear();
        for (dec, set) in ports {
            if let Some(c) = dec {
                decided.push(c);
            } else if let Some(cu) = set {
                ids.push(self.packed_id(cu));
            }
        }
        let best = Self::best_color_core(
            &self.packed,
            self.g,
            cand,
            &mut ids,
            &mut decided,
            &mut freq,
        );
        self.group_scratch = ids;
        self.decided_scratch = decided;
        self.freq_scratch = freq;
        best
    }

    /// The frequency pass of [`Self::best_color`], over already-gathered
    /// inputs: `ids` / `decided` are the (unsorted) packed ids and decided
    /// colors of the node's relevant ports; `freq` is scratch. A pure
    /// function of its arguments — the batch pass calls it from worker
    /// threads with per-chunk scratch.
    fn best_color_core(
        packed: &[PackedSet],
        g: u64,
        cand: &[Color],
        ids: &mut [u32],
        decided: &mut [Color],
        freq: &mut Vec<u64>,
    ) -> Option<(u64, Color)> {
        freq.clear();
        freq.resize(cand.len(), 0);
        decided.sort_unstable();
        ids.sort_unstable();
        let mut at = 0usize;
        while at < ids.len() {
            let id = ids[at];
            let mut mult = 0u64;
            while at < ids.len() && ids[at] == id {
                mult += 1;
                at += 1;
            }
            let set = &packed[id as usize];
            if g == 0 {
                for (f, &x) in freq.iter_mut().zip(cand) {
                    *f += mult * u64::from(set.contains(x));
                }
            } else {
                for (f, &x) in freq.iter_mut().zip(cand) {
                    *f += mult * set.count_range(x.saturating_sub(g), x.saturating_add(g));
                }
            }
        }
        let mut best: Option<(u64, Color)> = None;
        for (&x, &fs) in cand.iter().zip(freq.iter()) {
            let lo = x.saturating_sub(g);
            let hi = x.saturating_add(g);
            let start = decided.partition_point(|&c| c < lo);
            let end = decided.partition_point(|&c| c <= hi);
            let f = fs + (end - start) as u64;
            if best.map_or(true, |(bf, bx)| f < bf || (f == bf && x < bx)) {
                best = Some((f, x));
            }
        }
        best
    }

    /// Interning of a color list (by contents, not address): fingerprint
    /// lookup plus an equality check against every stored list sharing the
    /// fingerprint.
    fn intern_list(&mut self, list: &[Color]) -> u32 {
        let fp = list_fingerprint(list);
        if let Some(bucket) = self.list_ids.get(&fp) {
            for &id in bucket.iter() {
                if *self.list_store[id as usize] == *list {
                    return id;
                }
            }
        }
        // A new list at the capacity bound resets the list epoch: the
        // interned lists, their fingerprint buckets, and the select memo
        // (its keys embed list ids) are dropped together. The reset is a
        // pure function of the interning sequence, so thread counts and
        // shared-cache state cannot change when it fires.
        if self.list_store.len() >= self.list_capacity {
            self.stats.evictions += self.list_store.len() as u64;
            self.list_epoch += 1;
            self.list_ids.clear();
            self.list_store.clear();
            self.select_memo.clear();
        }
        let id = self.list_store.len() as u32;
        self.list_store.push(Arc::from(list));
        self.list_ids.entry(fp).or_default().push(id);
        self.stats.distinct_lists += 1;
        id
    }

    /// Chunk count for a batched phase over `items` units carrying `work`
    /// total color slots: 1 (inline) unless the configured thread count
    /// and the work volume justify fan-out.
    fn par_chunks(&self, items: usize, work: u64) -> usize {
        if self.threads <= 1 || items < 2 || work < PAR_WORK_THRESHOLD {
            1
        } else {
            self.threads.min(MAX_CHUNKS).min(items)
        }
    }

    /// Batched [`Self::select`]: results, stats, and memo state are
    /// byte-identical to calling `select` once per request in order, but
    /// the selections neither memo layer holds are computed out-of-order
    /// across the worker pool — `SeededSubset::select_into` is a pure
    /// function of the request (plus the shared seed), so computing
    /// misses in parallel and publishing them in queue order is
    /// indistinguishable from the sequential loop. Two requests with the
    /// same key cost one computation and one miss, exactly as the second
    /// sequential call would have hit the memo entry of the first.
    pub fn select_batch(&mut self, reqs: &[SelectReq<'_>]) -> Vec<Arc<[Color]>> {
        if self.mode == KernelMode::Reference {
            return self.select_batch_reference(reqs);
        }
        enum Slot {
            Done(Arc<[Color]>),
            Pending(u32),
        }
        // Pass 1 (sequential, request order): count calls, intern lists,
        // probe the private memo and the shared cache, queue the rest.
        let mut slots: Vec<Slot> = Vec::with_capacity(reqs.len());
        let mut pending: Vec<PendingSelect> = Vec::new();
        let mut pending_of: DetMap<SelectKey, u32> = DetMap::default();
        let mut epoch = self.list_epoch;
        for r in reqs {
            self.stats.select_calls += 1;
            let list_id = self.intern_list(r.list);
            if self.list_epoch != epoch {
                // An epoch reset wiped the select memo; queued keys from
                // the old epoch must not alias re-issued list ids, so the
                // key → queue-index map restarts with the epoch (already
                // queued computations still run and resolve their slots).
                epoch = self.list_epoch;
                pending_of.clear();
            }
            let key: SelectKey = (r.init_color, list_id, r.k as u64, r.attempt);
            if let Some(set) = self.select_memo.get(&key) {
                slots.push(Slot::Done(set.clone()));
                continue;
            }
            if let Some(&pi) = pending_of.get(&key) {
                slots.push(Slot::Pending(pi));
                continue;
            }
            self.stats.select_misses += 1;
            let list = self.list_store[list_id as usize].clone();
            let shared_key = if let Some(shared) = self.shared.clone() {
                let skey: SharedSelectKey = (
                    self.strategy.seed,
                    r.init_color,
                    r.k as u64,
                    r.attempt,
                    list.clone(),
                );
                if let Some(set) = shared.select_get(&skey) {
                    self.stats.shared_hits += 1;
                    self.select_memo.insert(key, set.clone());
                    slots.push(Slot::Done(set));
                    continue;
                }
                self.stats.shared_misses += 1;
                Some(skey)
            } else {
                None
            };
            pending_of.insert(key, pending.len() as u32);
            slots.push(Slot::Pending(pending.len() as u32));
            pending.push(PendingSelect {
                key,
                epoch,
                init_color: r.init_color,
                k: r.k,
                attempt: r.attempt,
                list,
                shared_key,
            });
        }
        // Pass 2 (parallel): compute the queued selections.
        let computed = self.compute_selections(&pending);
        // Pass 3 (sequential, queue order): publish. Entries queued
        // before an epoch reset are not re-inserted into the memo — the
        // sequential loop would have inserted and then wiped them.
        for (p, set) in pending.into_iter().zip(computed.iter()) {
            if p.epoch == self.list_epoch {
                self.select_memo.insert(p.key, set.clone());
            }
            if let (Some(skey), Some(shared)) = (p.shared_key, self.shared.as_ref()) {
                shared.select_put(skey, set.clone());
            }
        }
        slots
            .into_iter()
            .map(|s| match s {
                Slot::Done(set) => set,
                Slot::Pending(pi) => computed[pi as usize].clone(),
            })
            .collect()
    }

    /// Reference-mode batch: every request computes (no memoization), in
    /// parallel — the computation is pure, the results land in request
    /// order.
    fn select_batch_reference(&mut self, reqs: &[SelectReq<'_>]) -> Vec<Arc<[Color]>> {
        self.stats.select_calls += reqs.len() as u64;
        self.stats.select_misses += reqs.len() as u64;
        if reqs.is_empty() {
            return Vec::new();
        }
        let work: u64 = reqs.iter().map(|r| r.list.len() as u64).sum();
        let chunks = self.par_chunks(reqs.len(), work);
        let bounds = chunk_bounds(reqs.len(), chunks);
        let mut out: Vec<Option<Arc<[Color]>>> = vec![None; reqs.len()];
        let slots = DisjointChunks::new(&mut out, &bounds);
        let strategy = self.strategy;
        pool_execute(self.threads, chunks, |c| {
            let mut scratch: Vec<Color> = Vec::new();
            let start = bounds[c];
            for (off, slot) in slots.take(c).iter_mut().enumerate() {
                let r = &reqs[start + off];
                strategy.select_into(r.init_color, r.list, r.k, r.attempt, &mut scratch);
                *slot = Some(Arc::from(&scratch[..]));
            }
        });
        out.into_iter().map(|s| s.expect("chunk filled")).collect()
    }

    /// Pass 2 of [`Self::select_batch`]: compute the queued selections,
    /// fanning out over the pool when the volume warrants it. Chunks
    /// write disjoint result ranges with per-chunk scratch; results land
    /// in queue order regardless of thread count.
    fn compute_selections(&self, pending: &[PendingSelect]) -> Vec<Arc<[Color]>> {
        if pending.is_empty() {
            return Vec::new();
        }
        let work: u64 = pending.iter().map(|p| p.list.len() as u64).sum();
        let chunks = self.par_chunks(pending.len(), work);
        let bounds = chunk_bounds(pending.len(), chunks);
        let mut out: Vec<Option<Arc<[Color]>>> = vec![None; pending.len()];
        let slots = DisjointChunks::new(&mut out, &bounds);
        let strategy = self.strategy;
        pool_execute(self.threads, chunks, |c| {
            let mut scratch: Vec<Color> = Vec::new();
            let start = bounds[c];
            for (off, slot) in slots.take(c).iter_mut().enumerate() {
                let p = &pending[start + off];
                strategy.select_into(p.init_color, &p.list, p.k, p.attempt, &mut scratch);
                *slot = Some(Arc::from(&scratch[..]));
            }
        });
        out.into_iter().map(|s| s.expect("chunk filled")).collect()
    }

    /// Batched [`Self::conflict`]: verdicts, stats, and memo state are
    /// byte-identical to calling `conflict` over `pairs` in order; the
    /// verdicts neither memo layer holds are pure functions of the two
    /// interned sets and fan out over the pool (the packed tables are
    /// frozen for the pass — `Self::compute_verdict` takes `&self`).
    pub fn conflict_batch(&mut self, pairs: &[ListPair]) -> Vec<bool> {
        if self.mode == KernelMode::Reference {
            return self.conflict_batch_reference(pairs);
        }
        enum Slot {
            Done(bool),
            Pending(u32),
        }
        // Pass 1 (sequential, pair order): intern, probe, queue.
        let mut slots: Vec<Slot> = Vec::with_capacity(pairs.len());
        let mut pending: Vec<PendingVerdict> = Vec::new();
        let mut pending_of: DetMap<(u32, u32), u32> = DetMap::default();
        for (a, b) in pairs {
            self.stats.conflict_calls += 1;
            let ia = self.packed_id(a);
            let ib = self.packed_id(b);
            let key = (ia.min(ib), ia.max(ib));
            if let Some(&v) = self.verdicts.get(&key) {
                slots.push(Slot::Done(v));
                continue;
            }
            if let Some(&pi) = pending_of.get(&key) {
                slots.push(Slot::Pending(pi));
                continue;
            }
            self.stats.conflict_misses += 1;
            let shared_key = if let Some(shared) = self.shared.clone() {
                let skey = SharedTypeCache::verdict_key(self.tau, self.g, a, b);
                if let Some(v) = shared.verdict_get(&skey) {
                    self.stats.shared_hits += 1;
                    self.verdicts.insert(key, v);
                    slots.push(Slot::Done(v));
                    continue;
                }
                self.stats.shared_misses += 1;
                Some(skey)
            } else {
                None
            };
            pending_of.insert(key, pending.len() as u32);
            slots.push(Slot::Pending(pending.len() as u32));
            pending.push(PendingVerdict { key, shared_key });
        }
        // Pass 2 (parallel): compute the missing verdicts.
        let mut computed: Vec<bool> = vec![false; pending.len()];
        if !pending.is_empty() {
            let work: u64 = pending
                .iter()
                .map(|p| {
                    (self.arcs[p.key.0 as usize].len() + self.arcs[p.key.1 as usize].len()) as u64
                })
                .sum();
            let chunks = self.par_chunks(pending.len(), work);
            let bounds = chunk_bounds(pending.len(), chunks);
            let vslots = DisjointChunks::new(&mut computed, &bounds);
            let this: &TypeCache = self;
            pool_execute(this.threads, chunks, |c| {
                let start = bounds[c];
                for (off, slot) in vslots.take(c).iter_mut().enumerate() {
                    let (i, j) = pending[start + off].key;
                    *slot = this.compute_verdict(i, j);
                }
            });
        }
        // Pass 3 (sequential, queue order): publish.
        for (p, &v) in pending.into_iter().zip(computed.iter()) {
            self.verdicts.insert(p.key, v);
            if let (Some(skey), Some(shared)) = (p.shared_key, self.shared.as_ref()) {
                shared.verdict_put(skey, v);
            }
        }
        slots
            .into_iter()
            .map(|s| match s {
                Slot::Done(v) => v,
                Slot::Pending(pi) => computed[pi as usize],
            })
            .collect()
    }

    /// Reference-mode batch: every pair computes via the naive kernel, in
    /// parallel, results in pair order.
    fn conflict_batch_reference(&mut self, pairs: &[ListPair]) -> Vec<bool> {
        self.stats.conflict_calls += pairs.len() as u64;
        self.stats.conflict_misses += pairs.len() as u64;
        if pairs.is_empty() {
            return Vec::new();
        }
        let work: u64 = pairs.iter().map(|(a, b)| (a.len() + b.len()) as u64).sum();
        let chunks = self.par_chunks(pairs.len(), work);
        let bounds = chunk_bounds(pairs.len(), chunks);
        let mut out: Vec<bool> = vec![false; pairs.len()];
        let slots = DisjointChunks::new(&mut out, &bounds);
        let (tau, g) = (self.tau, self.g);
        pool_execute(self.threads, chunks, |c| {
            let start = bounds[c];
            for (off, slot) in slots.take(c).iter_mut().enumerate() {
                let (a, b) = &pairs[start + off];
                *slot = tau_g_conflict(a, b, tau, g);
            }
        });
        out
    }

    /// Append one node's decision job to `batch` (`ports` exactly as in
    /// [`Self::best_color`]). Jobs must be pushed in node order — the
    /// packed-id interning this performs is part of the deterministic
    /// stats stream.
    pub fn push_decision<'p>(
        &mut self,
        batch: &mut DecisionBatch,
        cand: &Arc<[Color]>,
        ports: impl Iterator<Item = (Option<Color>, Option<&'p Arc<[Color]>>)>,
    ) {
        let d0 = batch.decided.len() as u32;
        let i0 = batch.ids.len() as u32;
        for (dec, set) in ports {
            if let Some(c) = dec {
                batch.decided.push(c);
            } else if let Some(cu) = set {
                batch.ids.push(self.packed_id(cu));
            }
        }
        batch.jobs.push(DecisionJob {
            cand: cand.clone(),
            decided: (d0, batch.decided.len() as u32),
            ids: (i0, batch.ids.len() as u32),
        });
    }

    /// Run every gathered decision job; results land in push order,
    /// byte-identical to calling [`Self::best_color`] per job in order —
    /// the frequency pass is a pure function of the gathered inputs, so
    /// per-chunk scratch and out-of-order chunk execution cannot change
    /// any verdict.
    pub fn best_color_batch(&self, batch: &DecisionBatch) -> Vec<Option<(u64, Color)>> {
        if batch.jobs.is_empty() {
            return Vec::new();
        }
        let work: u64 = batch
            .jobs
            .iter()
            .map(|j| j.cand.len() as u64 * (1 + u64::from(j.ids.1 - j.ids.0)))
            .sum();
        let chunks = self.par_chunks(batch.jobs.len(), work);
        let bounds = chunk_bounds(batch.jobs.len(), chunks);
        let mut out: Vec<Option<(u64, Color)>> = vec![None; batch.jobs.len()];
        let slots = DisjointChunks::new(&mut out, &bounds);
        let this: &TypeCache = self;
        pool_execute(this.threads, chunks, |c| {
            let mut ids: Vec<u32> = Vec::new();
            let mut decided: Vec<Color> = Vec::new();
            let mut freq: Vec<u64> = Vec::new();
            let start = bounds[c];
            for (off, slot) in slots.take(c).iter_mut().enumerate() {
                let j = &batch.jobs[start + off];
                ids.clear();
                ids.extend_from_slice(&batch.ids[j.ids.0 as usize..j.ids.1 as usize]);
                decided.clear();
                decided
                    .extend_from_slice(&batch.decided[j.decided.0 as usize..j.decided.1 as usize]);
                *slot = Self::best_color_core(
                    &this.packed,
                    this.g,
                    &j.cand,
                    &mut ids,
                    &mut decided,
                    &mut freq,
                );
            }
        });
        out
    }
}

/// One request of a batched candidate-set selection
/// ([`TypeCache::select_batch`]).
#[derive(Debug, Clone, Copy)]
pub struct SelectReq<'a> {
    /// The node type's initial color.
    pub init_color: u64,
    /// The node type's (sorted) color list.
    pub list: &'a [Color],
    /// Subset size.
    pub k: usize,
    /// Retry attempt.
    pub attempt: u32,
}

/// A queued selection of [`TypeCache::select_batch`]: everything the
/// parallel pass needs, captured by value (the list `Arc` stays valid
/// even if an epoch reset recycles its id).
struct PendingSelect {
    key: SelectKey,
    epoch: u64,
    init_color: u64,
    k: usize,
    attempt: u32,
    list: Arc<[Color]>,
    shared_key: Option<SharedSelectKey>,
}

/// A queued verdict of [`TypeCache::conflict_batch`].
struct PendingVerdict {
    key: (u32, u32),
    shared_key: Option<SharedVerdictKey>,
}

/// Gathered decision jobs for [`TypeCache::best_color_batch`]: per job a
/// candidate set plus ranges into shared arenas of decided colors and
/// packed ids of undecided neighbor sets.
#[derive(Default)]
pub struct DecisionBatch {
    jobs: Vec<DecisionJob>,
    decided: Vec<Color>,
    ids: Vec<u32>,
}

struct DecisionJob {
    cand: Arc<[Color]>,
    decided: (u32, u32),
    ids: (u32, u32),
}

impl DecisionBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Jobs gathered so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether any job has been gathered.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Drop all gathered jobs, keeping the arena allocations.
    pub fn clear(&mut self) {
        self.jobs.clear();
        self.decided.clear();
        self.ids.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::{conflict_weight, mu_g, psi_g};

    fn mk(colors: &[u64]) -> Vec<u64> {
        let mut v = colors.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn packed_membership_matches_binary_search() {
        let list = mk(&[3, 64, 65, 127, 128, 1000, 1001]);
        let set = PackedSet::from_sorted(&list);
        assert_eq!(set.len(), list.len() as u64);
        for x in 0..1100u64 {
            assert_eq!(set.contains(x), list.binary_search(&x).is_ok(), "x = {x}");
        }
    }

    #[test]
    fn packed_count_range_matches_mu() {
        let list = mk(&[0, 1, 63, 64, 65, 127, 200, 201, 202]);
        let set = PackedSet::from_sorted(&list);
        for x in 0..260u64 {
            for g in [0u64, 1, 2, 63, 64, 500] {
                assert_eq!(
                    set.count_range(x.saturating_sub(g), x + g),
                    mu_g(x, &list, g),
                    "x = {x}, g = {g}"
                );
            }
        }
    }

    #[test]
    fn packed_intersection_respects_offsets() {
        // Offset-normalization edge cases: bases far apart, word-boundary
        // straddles, and a high-offset pair (the aux instances live at
        // tiny colors, the main instance anywhere).
        let base = 1u64 << 40;
        let a = mk(&[base + 1, base + 64, base + 65, base + 200]);
        let b = mk(&[base + 64, base + 200, base + 201]);
        let (pa, pb) = (PackedSet::from_sorted(&a), PackedSet::from_sorted(&b));
        assert_eq!(pa.intersection_size(&pb), conflict_weight(&a, &b, 0));
        assert_eq!(pb.intersection_size(&pa), conflict_weight(&a, &b, 0));
        // Disjoint spans.
        let c = mk(&[5, 9]);
        let pc = PackedSet::from_sorted(&c);
        assert_eq!(pa.intersection_size(&pc), 0);
        assert_eq!(pc.intersection_size(&pa), 0);
    }

    #[test]
    fn early_exit_merge_matches_threshold() {
        let a = mk(&[0, 3, 6, 7, 20, 21, 22]);
        let b = mk(&[1, 2, 6, 19, 22, 23]);
        for g in 0..6u64 {
            let w = conflict_weight(&a, &b, g);
            for tau in 0..w + 3 {
                assert_eq!(
                    conflict_weight_at_least(&a, &b, tau, g),
                    w >= tau,
                    "g = {g}, tau = {tau}"
                );
            }
        }
    }

    #[test]
    fn psi_fast_matches_naive() {
        let k1 = vec![mk(&[1, 2]), mk(&[10, 11]), mk(&[20, 21])];
        let k2 = vec![mk(&[1, 2]), mk(&[20, 22])];
        for tp in 1..4 {
            for tau in 1..4 {
                for g in 0..3 {
                    assert_eq!(
                        psi_g_fast(&k1, &k2, tp, tau, g),
                        psi_g(&k1, &k2, tp, tau, g),
                        "τ' = {tp}, τ = {tau}, g = {g}"
                    );
                }
            }
        }
    }

    #[test]
    fn cache_select_is_byte_identical_and_memoized() {
        let strategy = SeededSubset { seed: 99 };
        let list: Vec<u64> = (0..200).map(|i| i * 5).collect();
        let mut fast = TypeCache::new(strategy, 4, 0, KernelMode::Fast);
        let mut refc = TypeCache::new(strategy, 4, 0, KernelMode::Reference);
        let a1 = fast.select(7, &list, 12, 0);
        let a2 = fast.select(7, &list, 12, 0);
        let r1 = refc.select(7, &list, 12, 0);
        assert_eq!(&a1[..], &strategy.select(7, &list, 12, 0)[..]);
        assert_eq!(a1, r1);
        assert!(Arc::ptr_eq(&a1, &a2), "second call must hit the memo");
        assert_eq!(fast.stats.select_calls, 2);
        assert_eq!(fast.stats.select_misses, 1);
        let _ = refc.select(7, &list, 12, 0);
        assert_eq!(refc.stats.select_misses, 2, "reference mode never memoizes");
    }

    #[test]
    fn cache_conflict_verdicts_match_and_memoize() {
        let strategy = SeededSubset { seed: 5 };
        for g in [0u64, 2] {
            let mut cache = TypeCache::new(strategy, 3, g, KernelMode::Fast);
            let a: Arc<[u64]> = Arc::from(&mk(&[1, 4, 9, 16, 25])[..]);
            let b: Arc<[u64]> = Arc::from(&mk(&[2, 3, 5, 8, 13, 21])[..]);
            let expect = tau_g_conflict(&a, &b, 3, g);
            assert_eq!(cache.conflict(&a, &b), expect);
            assert_eq!(cache.conflict(&b, &a), expect, "symmetric key");
            assert_eq!(cache.stats.conflict_calls, 2);
            assert_eq!(cache.stats.conflict_misses, 1);
        }
    }

    #[test]
    fn list_interning_is_collision_checked() {
        let strategy = SeededSubset { seed: 1 };
        let mut cache = TypeCache::new(strategy, 2, 0, KernelMode::Fast);
        let l1: Vec<u64> = (0..50).collect();
        let l2: Vec<u64> = (0..50).map(|i| i + 1).collect();
        let a = cache.intern_list(&l1);
        let b = cache.intern_list(&l2);
        let c = cache.intern_list(&l1);
        assert_ne!(a, b);
        assert_eq!(a, c);
        assert_eq!(cache.stats.distinct_lists, 2);
    }

    /// A batch of mixed-type requests spanning memo hits, in-batch
    /// duplicates, and misses.
    fn sample_reqs(lists: &[Vec<u64>]) -> Vec<(u64, usize, usize, u32)> {
        let mut reqs = Vec::new();
        for round in 0..3u64 {
            for (li, _list) in lists.iter().enumerate() {
                reqs.push((round * 7 + li as u64, li, 5 + li % 3, (round % 2) as u32));
                // In-batch duplicate of the same type.
                reqs.push((round * 7 + li as u64, li, 5 + li % 3, (round % 2) as u32));
            }
        }
        reqs
    }

    #[test]
    fn select_batch_matches_sequential_at_every_thread_count() {
        let strategy = SeededSubset { seed: 12 };
        let lists: Vec<Vec<u64>> = (0..6)
            .map(|j| (0..120u64).map(|i| i * 3 + j).collect())
            .collect();
        let reqs = sample_reqs(&lists);
        for mode in [KernelMode::Fast, KernelMode::Reference] {
            let mut seq = TypeCache::new(strategy, 4, 0, mode);
            let expected: Vec<Arc<[u64]>> = reqs
                .iter()
                .map(|&(ic, li, k, at)| seq.select(ic, &lists[li], k, at))
                .collect();
            for threads in [1usize, 2, 4, 8] {
                let cfg = KernelConfig::from(mode).with_threads(threads);
                let mut batch = TypeCache::with_config(strategy, 4, 0, &cfg);
                let batch_reqs: Vec<SelectReq<'_>> = reqs
                    .iter()
                    .map(|&(ic, li, k, at)| SelectReq {
                        init_color: ic,
                        list: &lists[li],
                        k,
                        attempt: at,
                    })
                    .collect();
                let got = batch.select_batch(&batch_reqs);
                for (g, e) in got.iter().zip(&expected) {
                    assert_eq!(&g[..], &e[..], "threads = {threads}, mode = {mode:?}");
                }
                assert_eq!(
                    batch.stats, seq.stats,
                    "threads = {threads}, mode = {mode:?}"
                );
            }
        }
    }

    #[test]
    fn conflict_batch_matches_sequential_at_every_thread_count() {
        let strategy = SeededSubset { seed: 3 };
        let sets: Vec<Arc<[u64]>> = (0..8)
            .map(|j| {
                let v: Vec<u64> = (0..90u64).map(|i| i * (j + 2)).collect();
                Arc::from(&v[..])
            })
            .collect();
        let mut pairs: Vec<ListPair> = Vec::new();
        for i in 0..sets.len() {
            for j in 0..sets.len() {
                pairs.push((sets[i].clone(), sets[j].clone()));
            }
        }
        for g in [0u64, 2] {
            for mode in [KernelMode::Fast, KernelMode::Reference] {
                let mut seq = TypeCache::new(strategy, 5, g, mode);
                let expected: Vec<bool> = pairs.iter().map(|(a, b)| seq.conflict(a, b)).collect();
                for threads in [1usize, 4] {
                    let cfg = KernelConfig::from(mode).with_threads(threads);
                    let mut batch = TypeCache::with_config(strategy, 5, g, &cfg);
                    assert_eq!(
                        batch.conflict_batch(&pairs),
                        expected,
                        "threads = {threads}"
                    );
                    assert_eq!(batch.stats, seq.stats, "threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn best_color_batch_matches_sequential() {
        let strategy = SeededSubset { seed: 8 };
        let sets: Vec<Arc<[u64]>> = (0..5)
            .map(|j| {
                let v: Vec<u64> = (0..40u64).map(|i| i * 2 + j).collect();
                Arc::from(&v[..])
            })
            .collect();
        let cand: Arc<[u64]> = Arc::from(&(0..30u64).map(|i| i * 3).collect::<Vec<_>>()[..]);
        for g in [0u64, 1] {
            let mut seq = TypeCache::new(strategy, 3, g, KernelMode::Fast);
            let mut expected = Vec::new();
            for node in 0..12usize {
                let ports = (0..sets.len()).map(|p| {
                    if (node + p) % 3 == 0 {
                        (Some((node * 5 + p) as u64), None)
                    } else {
                        (None, Some(&sets[(node + p) % sets.len()]))
                    }
                });
                expected.push(seq.best_color(&cand, ports));
            }
            for threads in [1usize, 4] {
                let cfg = KernelConfig::from(KernelMode::Fast).with_threads(threads);
                let mut par = TypeCache::with_config(strategy, 3, g, &cfg);
                let mut batch = DecisionBatch::new();
                for node in 0..12usize {
                    let ports = (0..sets.len()).map(|p| {
                        if (node + p) % 3 == 0 {
                            (Some((node * 5 + p) as u64), None)
                        } else {
                            (None, Some(&sets[(node + p) % sets.len()]))
                        }
                    });
                    par.push_decision(&mut batch, &cand, ports);
                }
                assert_eq!(
                    par.best_color_batch(&batch),
                    expected,
                    "threads = {threads}"
                );
                assert_eq!(par.stats, seq.stats, "threads = {threads}");
            }
        }
    }

    #[test]
    fn shared_cache_warms_across_caches_without_touching_private_counters() {
        let strategy = SeededSubset { seed: 21 };
        let list: Vec<u64> = (0..150u64).map(|i| i * 4).collect();
        let a: Arc<[u64]> = Arc::from(&mk(&[1, 4, 9, 16, 25, 36])[..]);
        let b: Arc<[u64]> = Arc::from(&mk(&[2, 3, 5, 8, 13, 21, 34])[..]);

        // Baseline: two private caches, no sharing.
        let run_private = |_: ()| {
            let mut c = TypeCache::new(strategy, 3, 0, KernelMode::Fast);
            let s = c.select(9, &list, 10, 0);
            let v = c.conflict(&a, &b);
            (s, v, c.stats)
        };
        let (s1, v1, stats1) = run_private(());

        let shared = SharedTypeCache::new(4, 1024);
        let cfg = KernelConfig::default().with_shared(shared.clone());
        let mut first = TypeCache::with_config(strategy, 3, 0, &cfg);
        let fs = first.select(9, &list, 10, 0);
        let fv = first.conflict(&a, &b);
        assert_eq!(&fs[..], &s1[..]);
        assert_eq!(fv, v1);
        assert_eq!(first.stats.shared_hits, 0);
        assert_eq!(first.stats.shared_misses, 2);

        let mut second = TypeCache::with_config(strategy, 3, 0, &cfg);
        let ss = second.select(9, &list, 10, 0);
        let sv = second.conflict(&a, &b);
        assert_eq!(&ss[..], &s1[..], "shared hit must be byte-identical");
        assert_eq!(sv, v1);
        assert_eq!(
            second.stats.shared_hits, 2,
            "second cache hits warm entries"
        );
        assert_eq!(second.stats.shared_misses, 0);

        // The deterministic counter stream is identical with sharing on
        // or off: a shared hit is still a private miss.
        for st in [first.stats, second.stats] {
            assert_eq!(st.select_calls, stats1.select_calls);
            assert_eq!(st.select_misses, stats1.select_misses);
            assert_eq!(st.conflict_calls, stats1.conflict_calls);
            assert_eq!(st.conflict_misses, stats1.conflict_misses);
        }
        let snap = shared.snapshot();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.misses, 2);
        assert_eq!(snap.entries, 2);
    }

    #[test]
    fn list_capacity_bound_evicts_deterministically() {
        let strategy = SeededSubset { seed: 2 };
        let cfg = KernelConfig::default().with_list_capacity(4);
        let mut cache = TypeCache::with_config(strategy, 2, 0, &cfg);
        let lists: Vec<Vec<u64>> = (0..10)
            .map(|j| (0..40u64).map(|i| i * 2 + j).collect())
            .collect();
        for list in &lists {
            let got = cache.select(5, list, 8, 0);
            assert_eq!(&got[..], &strategy.select(5, list, 8, 0)[..]);
        }
        // 10 distinct lists through a 4-slot store: resets at the 5th and
        // 9th interning, dropping 4 lists each time.
        assert_eq!(cache.stats.evictions, 8);
        assert_eq!(cache.stats.select_misses, 10);
        // Correctness survives the reset: a re-interned list still
        // selects the same bytes (and re-misses, since the memo reset).
        let again = cache.select(5, &lists[0], 8, 0);
        assert_eq!(&again[..], &strategy.select(5, &lists[0], 8, 0)[..]);

        // A run that never reaches capacity reports zero evictions.
        let mut roomy = TypeCache::new(strategy, 2, 0, KernelMode::Fast);
        for list in &lists {
            roomy.select(5, list, 8, 0);
        }
        assert_eq!(roomy.stats.evictions, 0);
    }

    #[test]
    fn select_batch_survives_mid_batch_epoch_reset() {
        let strategy = SeededSubset { seed: 4 };
        let lists: Vec<Vec<u64>> = (0..9)
            .map(|j| (0..30u64).map(|i| i * 3 + j).collect())
            .collect();
        // Same list revisited across the reset boundary: ids recycle, so
        // the queue map must not alias old and new keys.
        let order: Vec<usize> = vec![0, 1, 2, 0, 3, 4, 5, 6, 0, 7, 8, 0];
        let cfg = KernelConfig::default().with_list_capacity(3);
        let mut seq = TypeCache::with_config(strategy, 2, 0, &cfg);
        let expected: Vec<Arc<[u64]>> = order
            .iter()
            .map(|&li| seq.select(11, &lists[li], 6, 0))
            .collect();
        let mut batch = TypeCache::with_config(strategy, 2, 0, &cfg);
        let reqs: Vec<SelectReq<'_>> = order
            .iter()
            .map(|&li| SelectReq {
                init_color: 11,
                list: &lists[li],
                k: 6,
                attempt: 0,
            })
            .collect();
        let got = batch.select_batch(&reqs);
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(&g[..], &e[..]);
        }
        assert_eq!(batch.stats, seq.stats);
    }
}
