//! Shared solver kernels: packed color sets and the per-solve type cache.
//!
//! The round engine stopped being the bottleneck in PR 2 — on dense
//! instances virtually all wall time is spent in per-node solver kernels
//! (`conflict_weight` merges, `SeededSubset::select` draws, per-color
//! membership probes). The Maus–Tonoyan machinery behind Lemma 3.5 says
//! candidate sets are a pure function of a node's **type**
//! `(init_color, list, attempt)`, and conflict verdicts are pure functions
//! of the two candidate sets involved — so in dense instances (few
//! distinct types, or many repeated pairwise checks) almost all of that
//! work recomputes identical answers. This module removes the
//! recomputation without changing a single output byte:
//!
//! * [`PackedSet`] — a bitset over the (offset-normalized) color span of a
//!   sorted list. Membership is O(1) (vs. a binary search), `μ_g` is a
//!   masked popcount over the `[x−g, x+g]` window, and `g = 0`
//!   intersection weight is a word-parallel popcount of `A & B`.
//! * [`conflict_weight_at_least`] — the general `g ≥ 0` conflict test as a
//!   two-pointer merge that exits as soon as the running weight reaches
//!   `τ` (the exact weight above the threshold is never needed).
//! * [`TypeCache`] — a per-solve memo: color lists are interned by
//!   fingerprint (collision-checked, so a hash collision can only cost a
//!   missed hit, never a wrong answer), `SeededSubset::select` runs once
//!   per `(init_color, list, k, attempt)` type, and pairwise
//!   `τ&g`-conflict verdicts are cached per unordered candidate-set pair.
//!   Candidate sets produced by the cache are shared `Arc`s, so a set's
//!   address is a stable identity for the lifetime of the solve (the
//!   cache holds every `Arc` it ever returned) and both the packed-set
//!   table and the verdict table key on it.
//!
//! Every kernel has a naive counterpart in [`crate::conflict`] /
//! [`crate::cover`]; `KernelMode::Reference` routes through those
//! verbatim, and the seeded equivalence suite asserts byte-identical
//! solver outputs between the two modes (`tests/kernels.rs`).

use crate::conflict::tau_g_conflict;
use crate::cover::{list_fingerprint, SeededSubset};
use crate::problem::Color;
use std::collections::HashMap;
use std::sync::Arc;

/// Which kernel implementations a solver run uses.
///
/// `Fast` is the default everywhere; `Reference` re-routes every kernel
/// through the naive implementations with no memoization, for differential
/// testing (outputs must be byte-identical) and for recording the pre-cache
/// baseline in `BENCH_solver.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Packed sets + type-keyed memoization (production default).
    #[default]
    Fast,
    /// Naive kernels, no memoization (differential baseline).
    Reference,
}

/// A bitset over the color span of a sorted list, offset-normalized so
/// that the base is a multiple of 64 — two packed sets over the same color
/// space are therefore always word-aligned and intersection reduces to
/// `popcount(A & B)` over the overlapping word range.
#[derive(Debug, Clone)]
pub struct PackedSet {
    /// Base color of word 0 (always a multiple of 64).
    offset: u64,
    words: Vec<u64>,
    len: u64,
}

impl PackedSet {
    /// Build from a sorted, deduplicated color slice.
    pub fn from_sorted(colors: &[Color]) -> Self {
        debug_assert!(colors.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        let offset = colors.first().map_or(0, |&c| c & !63);
        let span = colors.last().map_or(0, |&c| c - offset + 1);
        let mut words = vec![0u64; span.div_ceil(64) as usize];
        for &c in colors {
            let r = c - offset;
            words[(r / 64) as usize] |= 1u64 << (r % 64);
        }
        PackedSet {
            offset,
            words,
            len: colors.len() as u64,
        }
    }

    /// Number of colors in the set.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) membership test (the packed replacement for `binary_search`).
    pub fn contains(&self, c: Color) -> bool {
        if c < self.offset {
            return false;
        }
        let r = c - self.offset;
        let w = (r / 64) as usize;
        w < self.words.len() && self.words[w] >> (r % 64) & 1 == 1
    }

    /// `|{c ∈ self : lo ≤ c ≤ hi}|` as a masked popcount — the packed
    /// `μ_g(x, ·)` with `lo = x−g`, `hi = x+g` (see [`crate::conflict::mu_g`]).
    pub fn count_range(&self, lo: Color, hi: Color) -> u64 {
        if self.words.is_empty() || hi < self.offset {
            return 0;
        }
        let top = self.offset + 64 * self.words.len() as u64 - 1;
        let lo = lo.max(self.offset);
        let hi = hi.min(top);
        if lo > hi {
            return 0;
        }
        let (rl, rh) = (lo - self.offset, hi - self.offset);
        let (wl, wh) = ((rl / 64) as usize, (rh / 64) as usize);
        let mask_lo = u64::MAX << (rl % 64);
        // `rh % 64 == 63` must keep all bits; shift by 63 − pos, never 64.
        let mask_hi = u64::MAX >> (63 - rh % 64);
        if wl == wh {
            return (self.words[wl] & mask_lo & mask_hi).count_ones() as u64;
        }
        let mut total = (self.words[wl] & mask_lo).count_ones() as u64;
        for w in &self.words[wl + 1..wh] {
            total += w.count_ones() as u64;
        }
        total + (self.words[wh] & mask_hi).count_ones() as u64
    }

    /// `|A ∩ B|` by word-parallel popcount — `conflict_weight(A, B, 0)`.
    pub fn intersection_size(&self, other: &Self) -> u64 {
        let (a, b) = if self.offset <= other.offset {
            (self, other)
        } else {
            (other, self)
        };
        // Offsets are multiples of 64, so the shift is whole words.
        let shift = ((b.offset - a.offset) / 64) as usize;
        if shift >= a.words.len() {
            return 0;
        }
        a.words[shift..]
            .iter()
            .zip(&b.words)
            .map(|(x, y)| (x & y).count_ones() as u64)
            .sum()
    }

    /// Words this set occupies (cost estimate for the adaptive conflict
    /// kernel).
    fn word_count(&self) -> usize {
        self.words.len()
    }
}

/// `conflict_weight(c1, c2, g) ≥ tau`, computed by a single merge-style
/// sweep over both sorted lists that stops the moment the running weight
/// reaches `tau` — the verification loops only ever need the verdict, not
/// the exact weight. Equivalent to [`tau_g_conflict`] (property-tested).
pub fn conflict_weight_at_least(c1: &[Color], c2: &[Color], tau: u64, g: u64) -> bool {
    if tau == 0 {
        return true;
    }
    let mut lo = 0usize;
    let mut hi = 0usize;
    let mut total = 0u64;
    for &x in c1 {
        let lbound = x.saturating_sub(g);
        let ubound = x.saturating_add(g);
        while lo < c2.len() && c2[lo] < lbound {
            lo += 1;
        }
        if hi < lo {
            hi = lo;
        }
        while hi < c2.len() && c2[hi] <= ubound {
            hi += 1;
        }
        total += (hi - lo) as u64;
        if total >= tau {
            return true;
        }
    }
    false
}

/// Definition 3.3 with early exits on both levels: member conflicts are
/// decided by [`conflict_weight_at_least`] and the scan stops at `τ'`
/// conflicting members. Equivalent to [`crate::conflict::psi_g`].
pub fn psi_g_fast(k1: &[Vec<Color>], k2: &[Vec<Color>], tau_prime: u64, tau: u64, g: u64) -> bool {
    let mut conflicting = 0u64;
    for c in k1 {
        if k2.iter().any(|c2| conflict_weight_at_least(c, c2, tau, g)) {
            conflicting += 1;
            if conflicting >= tau_prime {
                return true;
            }
        }
    }
    false
}

/// Hit/miss accounting of a [`TypeCache`] (deterministic: a pure function
/// of the instance, so it byte-diffs across runs and thread counts —
/// experiment E18 tabulates it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Candidate-set selections requested.
    pub select_calls: u64,
    /// Selections actually computed (misses; hits = calls − misses).
    pub select_misses: u64,
    /// Pairwise `τ&g`-conflict verdicts requested.
    pub conflict_calls: u64,
    /// Verdicts actually computed.
    pub conflict_misses: u64,
    /// Distinct interned `(list)` types seen.
    pub distinct_lists: u64,
    /// Distinct candidate sets packed.
    pub distinct_sets: u64,
}

impl KernelStats {
    /// Fold another cache's counters into this one (a Theorem 1.1 solve
    /// aggregates the auxiliary instance's cache and the main one).
    pub fn absorb(&mut self, other: &KernelStats) {
        self.select_calls += other.select_calls;
        self.select_misses += other.select_misses;
        self.conflict_calls += other.conflict_calls;
        self.conflict_misses += other.conflict_misses;
        self.distinct_lists += other.distinct_lists;
        self.distinct_sets += other.distinct_sets;
    }
}

/// Key of a memoized selection: the node type `(init_color, list)` —
/// with the list replaced by its interned id — plus `(k, attempt)`.
type SelectKey = (u64, u32, u64, u32);

/// Per-solve memoization of the type-keyed solver kernels.
///
/// One cache serves one solver invocation (one `(seed, τ, g)` regime);
/// everything it returns is a pure function of its inputs, so routing a
/// solver through it cannot change any output byte — it only skips
/// recomputation. See the module docs for the keying discipline.
pub struct TypeCache {
    mode: KernelMode,
    strategy: SeededSubset,
    tau: u64,
    g: u64,
    /// fingerprint → interned list ids with that fingerprint (equality is
    /// verified on lookup, so collisions cannot alias two types).
    list_ids: HashMap<u64, Vec<u32>>,
    list_store: Vec<Box<[Color]>>,
    select_memo: HashMap<SelectKey, Arc<[Color]>>,
    /// `Arc` address → packed id. Valid because `arcs` pins every interned
    /// allocation for the cache's lifetime.
    packed_ids: HashMap<usize, u32>,
    packed: Vec<PackedSet>,
    arcs: Vec<Arc<[Color]>>,
    verdicts: HashMap<(u32, u32), bool>,
    /// Scratch for `select_into` (reused across every selection).
    scratch: Vec<Color>,
    /// Per-node scratch of the grouped frequency loops: packed ids of the
    /// undecided ports (sorted, then run-length grouped).
    group_scratch: Vec<u32>,
    /// Per-node scratch: sorted colors of decided relevant out-neighbors.
    decided_scratch: Vec<Color>,
    /// Per-node scratch: one running frequency per candidate color.
    freq_scratch: Vec<u64>,
    /// Counters (see [`KernelStats`]).
    pub stats: KernelStats,
}

impl TypeCache {
    /// A cache for one solve under `(strategy, τ, g)`.
    pub fn new(strategy: SeededSubset, tau: u64, g: u64, mode: KernelMode) -> Self {
        TypeCache {
            mode,
            strategy,
            tau,
            g,
            list_ids: HashMap::new(),
            list_store: Vec::new(),
            select_memo: HashMap::new(),
            packed_ids: HashMap::new(),
            packed: Vec::new(),
            arcs: Vec::new(),
            verdicts: HashMap::new(),
            scratch: Vec::new(),
            group_scratch: Vec::new(),
            decided_scratch: Vec::new(),
            freq_scratch: Vec::new(),
            stats: KernelStats::default(),
        }
    }

    /// The mode this cache runs in.
    pub fn mode(&self) -> KernelMode {
        self.mode
    }

    /// Candidate-set selection, memoized per `(type, k, attempt)`.
    ///
    /// Byte-identical to `Arc::from(strategy.select(...))` in both modes:
    /// `SeededSubset::select` is a pure function of exactly this key (plus
    /// the shared seed), so equal keys select equal sets.
    pub fn select(
        &mut self,
        init_color: u64,
        list: &[Color],
        k: usize,
        attempt: u32,
    ) -> Arc<[Color]> {
        self.stats.select_calls += 1;
        if self.mode == KernelMode::Reference {
            self.stats.select_misses += 1;
            self.strategy
                .select_into(init_color, list, k, attempt, &mut self.scratch);
            return Arc::from(&self.scratch[..]);
        }
        let list_id = self.intern_list(list);
        let key: SelectKey = (init_color, list_id, k as u64, attempt);
        if let Some(set) = self.select_memo.get(&key) {
            return set.clone();
        }
        self.stats.select_misses += 1;
        self.strategy
            .select_into(init_color, list, k, attempt, &mut self.scratch);
        let set: Arc<[Color]> = Arc::from(&self.scratch[..]);
        self.select_memo.insert(key, set.clone());
        set
    }

    /// Pairwise `τ&g`-conflict verdict (Definition 3.2), cached per
    /// unordered set pair (`conflict_weight` is symmetric).
    pub fn conflict(&mut self, a: &Arc<[Color]>, b: &Arc<[Color]>) -> bool {
        self.stats.conflict_calls += 1;
        if self.mode == KernelMode::Reference {
            self.stats.conflict_misses += 1;
            return tau_g_conflict(a, b, self.tau, self.g);
        }
        let ia = self.packed_id(a);
        let ib = self.packed_id(b);
        let key = (ia.min(ib), ia.max(ib));
        if let Some(&v) = self.verdicts.get(&key) {
            return v;
        }
        self.stats.conflict_misses += 1;
        let verdict = if self.g == 0 {
            // Adaptive: popcount when the word spans are cheaper than the
            // merge, the early-exit merge otherwise. Same verdict either
            // way (both equal `conflict_weight ≥ τ`).
            let (pa, pb) = (&self.packed[ia as usize], &self.packed[ib as usize]);
            let words = pa.word_count().min(pb.word_count());
            if words <= a.len() + b.len() {
                pa.intersection_size(pb) >= self.tau
            } else {
                conflict_weight_at_least(a, b, self.tau, self.g)
            }
        } else {
            conflict_weight_at_least(a, b, self.tau, self.g)
        };
        self.verdicts.insert(key, verdict);
        verdict
    }

    /// Intern a candidate set by address and return its packed id
    /// (`Fast` mode only). The id indexes a dense table, so the hot
    /// per-color loops pay array indexing instead of hashing.
    pub fn packed_id(&mut self, set: &Arc<[Color]>) -> u32 {
        let key = Arc::as_ptr(set) as *const Color as usize;
        if let Some(&id) = self.packed_ids.get(&key) {
            return id;
        }
        let id = self.packed.len() as u32;
        self.packed.push(PackedSet::from_sorted(set));
        self.arcs.push(set.clone());
        self.packed_ids.insert(key, id);
        self.stats.distinct_sets += 1;
        id
    }

    /// O(1) membership in an interned set.
    pub fn packed_contains(&self, id: u32, x: Color) -> bool {
        self.packed[id as usize].contains(x)
    }

    /// Packed `μ_g(x, ·)` of an interned set (uses the cache's `g`).
    pub fn packed_mu(&self, id: u32, x: Color) -> u64 {
        self.packed[id as usize].count_range(x.saturating_sub(self.g), x.saturating_add(self.g))
    }

    /// The grouped frequency pass shared by the decision loops: given the
    /// relevant ports of one node — classified as either a decided color
    /// or an undecided neighbor's candidate set — compute, for each
    /// candidate color `x` of `cand`, the frequency
    /// `f(x) = #{decided ports: |c − x| ≤ g} + Σ_{undecided sets} μ_g(x, C)`
    /// and pick the minimizing `(f, x)` (ties toward the smaller color) —
    /// exactly the scan the naive loops perform, regrouped twice: ports
    /// sharing a candidate set contribute `multiplicity · μ_g` in one
    /// probe, and the set loop is outermost so each packed set streams
    /// through one frequency array instead of being re-probed per color
    /// (`f` is a commutative `u64` sum, so the regrouping is byte-exact).
    ///
    /// `ports` yields `(decided_color, candidate_set)` per relevant port.
    pub fn best_color<'p>(
        &mut self,
        cand: &[Color],
        ports: impl Iterator<Item = (Option<Color>, Option<&'p Arc<[Color]>>)>,
    ) -> Option<(u64, Color)> {
        let mut ids = std::mem::take(&mut self.group_scratch);
        let mut decided = std::mem::take(&mut self.decided_scratch);
        let mut freq = std::mem::take(&mut self.freq_scratch);
        ids.clear();
        decided.clear();
        freq.clear();
        freq.resize(cand.len(), 0);
        for (dec, set) in ports {
            if let Some(c) = dec {
                decided.push(c);
            } else if let Some(cu) = set {
                ids.push(self.packed_id(cu));
            }
        }
        decided.sort_unstable();
        ids.sort_unstable();
        let mut at = 0usize;
        while at < ids.len() {
            let id = ids[at];
            let mut mult = 0u64;
            while at < ids.len() && ids[at] == id {
                mult += 1;
                at += 1;
            }
            let set = &self.packed[id as usize];
            if self.g == 0 {
                for (f, &x) in freq.iter_mut().zip(cand) {
                    *f += mult * u64::from(set.contains(x));
                }
            } else {
                for (f, &x) in freq.iter_mut().zip(cand) {
                    *f +=
                        mult * set.count_range(x.saturating_sub(self.g), x.saturating_add(self.g));
                }
            }
        }
        let mut best: Option<(u64, Color)> = None;
        for (&x, &fs) in cand.iter().zip(freq.iter()) {
            let lo = x.saturating_sub(self.g);
            let hi = x.saturating_add(self.g);
            let start = decided.partition_point(|&c| c < lo);
            let end = decided.partition_point(|&c| c <= hi);
            let f = fs + (end - start) as u64;
            if best.map_or(true, |(bf, bx)| f < bf || (f == bf && x < bx)) {
                best = Some((f, x));
            }
        }
        self.group_scratch = ids;
        self.decided_scratch = decided;
        self.freq_scratch = freq;
        best
    }

    /// Interning of a color list (by contents, not address): fingerprint
    /// lookup plus an equality check against every stored list sharing the
    /// fingerprint.
    fn intern_list(&mut self, list: &[Color]) -> u32 {
        let fp = list_fingerprint(list);
        let bucket = self.list_ids.entry(fp).or_default();
        for &id in bucket.iter() {
            if *self.list_store[id as usize] == *list {
                return id;
            }
        }
        let id = self.list_store.len() as u32;
        self.list_store.push(list.into());
        bucket.push(id);
        self.stats.distinct_lists += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::{conflict_weight, mu_g, psi_g};

    fn mk(colors: &[u64]) -> Vec<u64> {
        let mut v = colors.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn packed_membership_matches_binary_search() {
        let list = mk(&[3, 64, 65, 127, 128, 1000, 1001]);
        let set = PackedSet::from_sorted(&list);
        assert_eq!(set.len(), list.len() as u64);
        for x in 0..1100u64 {
            assert_eq!(set.contains(x), list.binary_search(&x).is_ok(), "x = {x}");
        }
    }

    #[test]
    fn packed_count_range_matches_mu() {
        let list = mk(&[0, 1, 63, 64, 65, 127, 200, 201, 202]);
        let set = PackedSet::from_sorted(&list);
        for x in 0..260u64 {
            for g in [0u64, 1, 2, 63, 64, 500] {
                assert_eq!(
                    set.count_range(x.saturating_sub(g), x + g),
                    mu_g(x, &list, g),
                    "x = {x}, g = {g}"
                );
            }
        }
    }

    #[test]
    fn packed_intersection_respects_offsets() {
        // Offset-normalization edge cases: bases far apart, word-boundary
        // straddles, and a high-offset pair (the aux instances live at
        // tiny colors, the main instance anywhere).
        let base = 1u64 << 40;
        let a = mk(&[base + 1, base + 64, base + 65, base + 200]);
        let b = mk(&[base + 64, base + 200, base + 201]);
        let (pa, pb) = (PackedSet::from_sorted(&a), PackedSet::from_sorted(&b));
        assert_eq!(pa.intersection_size(&pb), conflict_weight(&a, &b, 0));
        assert_eq!(pb.intersection_size(&pa), conflict_weight(&a, &b, 0));
        // Disjoint spans.
        let c = mk(&[5, 9]);
        let pc = PackedSet::from_sorted(&c);
        assert_eq!(pa.intersection_size(&pc), 0);
        assert_eq!(pc.intersection_size(&pa), 0);
    }

    #[test]
    fn early_exit_merge_matches_threshold() {
        let a = mk(&[0, 3, 6, 7, 20, 21, 22]);
        let b = mk(&[1, 2, 6, 19, 22, 23]);
        for g in 0..6u64 {
            let w = conflict_weight(&a, &b, g);
            for tau in 0..w + 3 {
                assert_eq!(
                    conflict_weight_at_least(&a, &b, tau, g),
                    w >= tau,
                    "g = {g}, tau = {tau}"
                );
            }
        }
    }

    #[test]
    fn psi_fast_matches_naive() {
        let k1 = vec![mk(&[1, 2]), mk(&[10, 11]), mk(&[20, 21])];
        let k2 = vec![mk(&[1, 2]), mk(&[20, 22])];
        for tp in 1..4 {
            for tau in 1..4 {
                for g in 0..3 {
                    assert_eq!(
                        psi_g_fast(&k1, &k2, tp, tau, g),
                        psi_g(&k1, &k2, tp, tau, g),
                        "τ' = {tp}, τ = {tau}, g = {g}"
                    );
                }
            }
        }
    }

    #[test]
    fn cache_select_is_byte_identical_and_memoized() {
        let strategy = SeededSubset { seed: 99 };
        let list: Vec<u64> = (0..200).map(|i| i * 5).collect();
        let mut fast = TypeCache::new(strategy, 4, 0, KernelMode::Fast);
        let mut refc = TypeCache::new(strategy, 4, 0, KernelMode::Reference);
        let a1 = fast.select(7, &list, 12, 0);
        let a2 = fast.select(7, &list, 12, 0);
        let r1 = refc.select(7, &list, 12, 0);
        assert_eq!(&a1[..], &strategy.select(7, &list, 12, 0)[..]);
        assert_eq!(a1, r1);
        assert!(Arc::ptr_eq(&a1, &a2), "second call must hit the memo");
        assert_eq!(fast.stats.select_calls, 2);
        assert_eq!(fast.stats.select_misses, 1);
        let _ = refc.select(7, &list, 12, 0);
        assert_eq!(refc.stats.select_misses, 2, "reference mode never memoizes");
    }

    #[test]
    fn cache_conflict_verdicts_match_and_memoize() {
        let strategy = SeededSubset { seed: 5 };
        for g in [0u64, 2] {
            let mut cache = TypeCache::new(strategy, 3, g, KernelMode::Fast);
            let a: Arc<[u64]> = Arc::from(&mk(&[1, 4, 9, 16, 25])[..]);
            let b: Arc<[u64]> = Arc::from(&mk(&[2, 3, 5, 8, 13, 21])[..]);
            let expect = tau_g_conflict(&a, &b, 3, g);
            assert_eq!(cache.conflict(&a, &b), expect);
            assert_eq!(cache.conflict(&b, &a), expect, "symmetric key");
            assert_eq!(cache.stats.conflict_calls, 2);
            assert_eq!(cache.stats.conflict_misses, 1);
        }
    }

    #[test]
    fn list_interning_is_collision_checked() {
        let strategy = SeededSubset { seed: 1 };
        let mut cache = TypeCache::new(strategy, 2, 0, KernelMode::Fast);
        let l1: Vec<u64> = (0..50).collect();
        let l2: Vec<u64> = (0..50).map(|i| i + 1).collect();
        let a = cache.intern_list(&l1);
        let b = cache.intern_list(&l2);
        let c = cache.intern_list(&l1);
        assert_ne!(a, b);
        assert_eq!(a, c);
        assert_eq!(cache.stats.distinct_lists, 2);
    }
}
