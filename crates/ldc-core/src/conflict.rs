//! Conflict machinery of Section 3: `μ_g`, `τ&g`-conflicts (Definition
//! 3.2), the relation `Ψ_g` (Definition 3.3), and residue-class
//! restriction of color lists.

use crate::problem::Color;

/// `μ_g(x, C) = |{c ∈ C : |x − c| ≤ g}|` for a *sorted* slice `C`.
pub fn mu_g(x: Color, sorted: &[Color], g: u64) -> u64 {
    let lo = x.saturating_sub(g);
    let hi = x.saturating_add(g);
    let start = sorted.partition_point(|&c| c < lo);
    let end = sorted.partition_point(|&c| c <= hi);
    (end - start) as u64
}

/// The conflict weight `Σ_{x∈C₁} μ_g(x, C₂)` of two *sorted* color lists.
///
/// Symmetric: `conflict_weight(a, b, g) == conflict_weight(b, a, g)`.
pub fn conflict_weight(c1: &[Color], c2: &[Color], g: u64) -> u64 {
    // Two-pointer sweep: for each x in c1, count c2 ∩ [x−g, x+g].
    let mut lo = 0usize;
    let mut hi = 0usize;
    let mut total = 0u64;
    for &x in c1 {
        let lbound = x.saturating_sub(g);
        let ubound = x.saturating_add(g);
        while lo < c2.len() && c2[lo] < lbound {
            lo += 1;
        }
        if hi < lo {
            hi = lo;
        }
        while hi < c2.len() && c2[hi] <= ubound {
            hi += 1;
        }
        total += (hi - lo) as u64;
    }
    total
}

/// Definition 3.2: whether two sorted lists `τ&g`-conflict.
pub fn tau_g_conflict(c1: &[Color], c2: &[Color], tau: u64, g: u64) -> bool {
    conflict_weight(c1, c2, g) >= tau
}

/// Definition 3.3: `(K₁, K₂) ∈ Ψ_g(τ', τ)` — at least `τ'` members of `K₁`
/// each `τ&g`-conflict with some member of `K₂`. Members must be sorted.
///
/// Used by the exact (tiny-parameter) greedy of Lemma 3.5 and by tests; the
/// production selection strategy never materializes `K` sets (DESIGN.md S1).
pub fn psi_g(k1: &[Vec<Color>], k2: &[Vec<Color>], tau_prime: u64, tau: u64, g: u64) -> bool {
    let mut conflicting = 0u64;
    for c in k1 {
        if k2.iter().any(|c2| tau_g_conflict(c, c2, tau, g)) {
            conflicting += 1;
            if conflicting >= tau_prime {
                return true;
            }
        }
    }
    false
}

/// The residue restriction `P^a = {x ∈ P : x ≡ a (mod 2g+1)}` of Section
/// 3.2.2 (input need not be sorted; output is sorted).
pub fn residue_restrict(colors: &[Color], a: u64, g: u64) -> Vec<Color> {
    let modulus = 2 * g + 1;
    let mut out: Vec<Color> = colors
        .iter()
        .copied()
        .filter(|&x| x % modulus == a)
        .collect();
    out.sort_unstable();
    out
}

/// The residue `a` maximizing `|P^a|` (pigeonhole: the winner has at least
/// `|P|/(2g+1)` colors). Ties break toward the smaller residue.
pub fn best_residue(colors: &[Color], g: u64) -> u64 {
    let modulus = 2 * g + 1;
    let mut counts = vec![0u64; modulus as usize];
    for &x in colors {
        counts[(x % modulus) as usize] += 1;
    }
    (0..modulus)
        .max_by_key(|&a| (counts[a as usize], std::cmp::Reverse(a)))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mu_counts_window() {
        let c = vec![1, 5, 9, 13];
        assert_eq!(mu_g(5, &c, 0), 1);
        assert_eq!(mu_g(6, &c, 0), 0);
        assert_eq!(mu_g(6, &c, 1), 1);
        assert_eq!(mu_g(7, &c, 2), 2);
        assert_eq!(mu_g(0, &c, 100), 4);
        assert_eq!(mu_g(0, &c, 1), 1);
    }

    #[test]
    fn conflict_weight_is_symmetric() {
        let a = vec![1, 4, 9, 16, 25];
        let b = vec![2, 3, 5, 8, 13, 21];
        for g in 0..5 {
            assert_eq!(
                conflict_weight(&a, &b, g),
                conflict_weight(&b, &a, g),
                "g = {g}"
            );
        }
    }

    #[test]
    fn conflict_weight_matches_naive() {
        let a: Vec<u64> = vec![0, 3, 6, 7, 20];
        let b: Vec<u64> = vec![1, 2, 6, 19, 22];
        for g in 0..6u64 {
            let naive: u64 = a
                .iter()
                .map(|&x| b.iter().filter(|&&y| x.abs_diff(y) <= g).count() as u64)
                .sum();
            assert_eq!(conflict_weight(&a, &b, g), naive, "g = {g}");
        }
    }

    #[test]
    fn tau_conflict_threshold() {
        let a = vec![1, 2, 3];
        let b = vec![1, 2, 4];
        // g = 0: shared colors {1, 2} → weight 2.
        assert!(tau_g_conflict(&a, &b, 2, 0));
        assert!(!tau_g_conflict(&a, &b, 3, 0));
    }

    #[test]
    fn psi_counts_distinct_conflicting_members() {
        let k1 = vec![vec![1, 2], vec![10, 11], vec![20, 21]];
        let k2 = vec![vec![1, 2], vec![20, 22]];
        // Member 0 conflicts (weight 2 ≥ 2); member 2 conflicts with the
        // second at weight 1 only.
        assert!(psi_g(&k1, &k2, 1, 2, 0));
        assert!(!psi_g(&k1, &k2, 2, 2, 0));
        assert!(psi_g(&k1, &k2, 2, 1, 0));
    }

    #[test]
    fn residue_restriction_and_best() {
        let colors: Vec<u64> = (0..30).collect();
        let g = 2; // modulus 5
        for a in 0..5 {
            let r = residue_restrict(&colors, a, g);
            assert_eq!(r.len(), 6);
            assert!(r.iter().all(|&x| x % 5 == a));
            // Restricted colors are ≥ 2g+1 apart ⇒ μ_g ≤ 1 per probe color.
            for w in r.windows(2) {
                assert!(w[1] - w[0] > 2 * g);
            }
        }
        assert_eq!(best_residue(&colors, g), 0);
        let skewed = vec![3, 8, 13, 0];
        assert_eq!(best_residue(&skewed, 2), 3);
    }

    #[test]
    fn restricted_lists_conflict_at_most_once_per_color() {
        let a = residue_restrict(&(0..100).collect::<Vec<u64>>(), 1, 3);
        let b = residue_restrict(&(0..100).collect::<Vec<u64>>(), 4, 3);
        for &x in &a {
            assert!(mu_g(x, &b, 3) <= 1);
        }
    }
}
