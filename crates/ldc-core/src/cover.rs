//! Candidate-set selection for problems `P2`/`P1` (DESIGN.md §S1).
//!
//! The Maus–Tonoyan machinery lets every node pick, *without
//! communication*, a candidate color set `C_v` that conflicts little with
//! the candidate sets of its out-neighbors — because the pick depends only
//! on the node's **type** `(initial color, color list)` and a global greedy
//! over the type space exists (Lemma 3.5). That greedy is galactically
//! expensive (the paper's Appendix C), so this crate ships two strategies:
//!
//! * [`SeededSubset`] — the production strategy: `C_v` is a PRF-indexed
//!   `k`-subset of the list, still a 0-round deterministic function of the
//!   type; callers verify the conflict budget in one exchange and bump
//!   `attempt` on failure (never observed at the paper's list sizes),
//! * [`exact_greedy`] — Lemma 3.5 verbatim for miniature parameters,
//!   used by unit tests to demonstrate genuine zero-round solvability.

use crate::kernels::psi_g_fast;
use crate::problem::Color;
use std::collections::HashMap;

/// splitmix64 step — a tiny, portable PRF.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Hash a color list into a type fingerprint.
///
/// Used by [`crate::kernels::TypeCache`] to bucket interned lists; the
/// cache always confirms with a full slice comparison, so the fingerprint
/// only has to be well-distributed, not collision-free.
pub fn list_fingerprint(list: &[Color]) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ (list.len() as u64);
    for &c in list {
        let mut s = h ^ c.wrapping_mul(0x100000001b3);
        h = splitmix64(&mut s);
    }
    h
}

/// A deterministic selection of `k`-subsets keyed by node type and attempt.
#[derive(Debug, Clone, Copy)]
pub struct SeededSubset {
    /// Global seed; part of the algorithm description (all nodes share it).
    pub seed: u64,
}

impl SeededSubset {
    /// Select a sorted `k`-subset of the sorted `list`, as a function of
    /// `(seed, init_color, list, attempt)` only — identical types pick
    /// identical sets, which is exactly the `P2` interface.
    ///
    /// # Panics
    /// Panics if `k > list.len()`.
    pub fn select(&self, init_color: u64, list: &[Color], k: usize, attempt: u32) -> Vec<Color> {
        let mut out = Vec::new();
        self.select_into(init_color, list, k, attempt, &mut out);
        out
    }

    /// [`SeededSubset::select`] into a caller-provided buffer: `out` is
    /// cleared and refilled, so retry loops reuse one allocation across
    /// attempts instead of building a fresh `Vec` per draw.
    ///
    /// # Panics
    /// Panics if `k > list.len()`.
    pub fn select_into(
        &self,
        init_color: u64,
        list: &[Color],
        k: usize,
        attempt: u32,
        out: &mut Vec<Color>,
    ) {
        assert!(
            k <= list.len(),
            "cannot select {k} colors from a list of {}",
            list.len()
        );
        let mut state = self
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(init_color)
            .wrapping_add(u64::from(attempt).wrapping_mul(0xd1342543de82ef95))
            ^ list_fingerprint(list);
        // Partial Fisher–Yates over indices, reusing `out` as the index
        // scratch: colors are written over the chosen prefix afterwards,
        // so one buffer serves both roles.
        let n = list.len();
        out.clear();
        out.extend(0..n as u64);
        for i in 0..k {
            let j = i + (splitmix64(&mut state) as usize) % (n - i);
            out.swap(i, j);
        }
        out.truncate(k);
        for slot in out.iter_mut() {
            *slot = list[*slot as usize];
        }
        out.sort_unstable();
    }
}

/// All `k`-subsets of `items` (test/miniature sizes only).
pub fn combinations<T: Clone>(items: &[T], k: usize) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    if k > items.len() {
        return out;
    }
    let mut stack: Vec<usize> = (0..k).collect();
    loop {
        out.push(stack.iter().map(|&i| items[i].clone()).collect());
        // Advance the combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if stack[i] != i + items.len() - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        stack[i] += 1;
        for j in (i + 1)..k {
            stack[j] = stack[j - 1] + 1;
        }
    }
}

/// A node type for the exact greedy: initial proper color plus list.
pub type NodeType = (u64, Vec<Color>);

/// Lemma 3.5, verbatim, for miniature parameters: greedily assign to every
/// type `(c, L)` (over all `c < m` and all `ℓ`-subsets `L` of the color
/// space restricted to one residue class mod `2g+1`) a family
/// `K ∈ S(L) = ((L choose k) choose k')` such that no two assigned families
/// are `Ψ_g(τ', τ)`-related in either order.
///
/// Returns `None` if the greedy gets stuck (parameters too tight for the
/// counting argument of Lemma 3.2).
#[allow(clippy::too_many_arguments)]
pub fn exact_greedy(
    space: u64,
    m: u64,
    ell: usize,
    k: usize,
    k_prime: usize,
    tau: u64,
    tau_prime: u64,
    g: u64,
) -> Option<HashMap<NodeType, Vec<Vec<Color>>>> {
    let modulus = 2 * g + 1;
    let mut assignment: HashMap<NodeType, Vec<Vec<Color>>> = HashMap::new();
    let mut chosen: Vec<Vec<Vec<Color>>> = Vec::new();

    for a in 0..modulus {
        let residue_colors: Vec<Color> = (0..space).filter(|&x| x % modulus == a).collect();
        for list in combinations(&residue_colors, ell) {
            let candidate_sets = combinations(&combinations(&list, k), k_prime);
            for c in 0..m {
                let pick = candidate_sets.iter().find(|cand| {
                    chosen.iter().all(|prev| {
                        !psi_g_fast(cand, prev, tau_prime, tau, g)
                            && !psi_g_fast(prev, cand, tau_prime, tau, g)
                    })
                })?;
                chosen.push(pick.clone());
                assignment.insert((c, list.clone()), pick.clone());
            }
        }
    }
    Some(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::{psi_g, tau_g_conflict};

    #[test]
    fn seeded_subset_is_deterministic_per_type() {
        let s = SeededSubset { seed: 42 };
        let list: Vec<u64> = (0..50).map(|i| i * 3).collect();
        let a = s.select(7, &list, 10, 0);
        let b = s.select(7, &list, 10, 0);
        assert_eq!(a, b);
        let c = s.select(8, &list, 10, 0);
        let d = s.select(7, &list, 10, 1);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a.len(), 10);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        assert!(a.iter().all(|x| list.contains(x)));
    }

    #[test]
    fn seeded_subsets_of_disjoint_lists_do_not_conflict() {
        let s = SeededSubset { seed: 1 };
        let l1: Vec<u64> = (0..100).collect();
        let l2: Vec<u64> = (1000..1100).collect();
        let c1 = s.select(0, &l1, 20, 0);
        let c2 = s.select(1, &l2, 20, 0);
        assert!(!tau_g_conflict(&c1, &c2, 1, 0));
    }

    #[test]
    fn seeded_subsets_from_shared_list_conflict_rarely() {
        // Expected intersection of two random 12-subsets of 288 colors is
        // 0.5; τ = 4 conflicts should be very rare.
        let s = SeededSubset { seed: 9 };
        let list: Vec<u64> = (0..288).collect();
        let mut conflicts = 0;
        for t in 0..200u64 {
            let c1 = s.select(2 * t, &list, 12, 0);
            let c2 = s.select(2 * t + 1, &list, 12, 0);
            if tau_g_conflict(&c1, &c2, 4, 0) {
                conflicts += 1;
            }
        }
        assert!(conflicts <= 2, "{conflicts} τ-conflicts out of 200");
    }

    #[test]
    fn combinations_enumerate_exactly() {
        let items = [1, 2, 3, 4];
        let combos = combinations(&items, 2);
        assert_eq!(combos.len(), 6);
        assert!(combos.contains(&vec![1, 4]));
        assert_eq!(combinations(&items, 0).len(), 1);
        assert_eq!(combinations(&items, 5).len(), 0);
        assert_eq!(combinations(&items, 4).len(), 1);
    }

    #[test]
    fn exact_greedy_solves_miniature_p2() {
        // Tiny world: 6 colors, one residue class (g = 0 ⇒ modulus 1),
        // m = 2 initial colors, lists of 4, k = 2, k' = 2, τ = 2, τ' = 2.
        let table = exact_greedy(6, 2, 4, 2, 2, 2, 2, 0).expect("greedy must succeed");
        // Every pair of assigned K's must be Ψ-free in both orders.
        let all: Vec<&Vec<Vec<u64>>> = table.values().collect();
        for (i, k1) in all.iter().enumerate() {
            for k2 in all.iter().skip(i + 1) {
                assert!(!psi_g(k1, k2, 2, 2, 0));
                assert!(!psi_g(k2, k1, 2, 2, 0));
            }
        }
        // Shapes: each K has k' = 2 member sets of size k = 2 from the list.
        for ((_, list), k) in table.iter() {
            assert_eq!(k.len(), 2);
            for c in k {
                assert_eq!(c.len(), 2);
                assert!(c.iter().all(|x| list.contains(x)));
            }
        }
    }

    #[test]
    fn exact_greedy_reports_impossible_parameters() {
        // k' larger than the number of k-subsets of the list ⇒ S(L) empty.
        assert!(exact_greedy(4, 1, 2, 2, 3, 1, 1, 0).is_none());
    }
}
