//! **Theorem 1.4** — deterministic `(degree+1)`-list coloring in the
//! CONGEST model in `√Δ·polylog Δ + O(log* n)` rounds.
//!
//! The pipeline composes everything built so far:
//!
//! 1. Linial's algorithm gives a proper `O(Δ²)`-coloring in `O(log* n)`
//!    rounds with `O(log n)`-bit messages,
//! 2. Theorem 1.1's OLDC solver is wrapped in Corollary 4.2's color-space
//!    reduction with block size `p` chosen so every candidate message fits
//!    the CONGEST budget (`min{ℓ·log p, p} + O(log n)` bits),
//! 3. Theorem 1.3 turns that solver into a `(degree+1)`-list coloring
//!    algorithm; its per-stage arbdefective decomposition uses `q ≈
//!    √(Λ·κ)` buckets, which is where the `√Δ` shows up.
//!
//! The paper's Theorem 1.4 dispatches to \[GK21\]'s
//! `O(log²Δ·log n)`-round algorithm when `Δ > log² n`; per DESIGN.md §S4
//! this implementation substitutes the classic `O(Δ² + log* n)` color-class
//! iteration for that branch (the *new* contribution — the
//! `Δ ∈ [ω(log n), o(log² n)]` gap — is the branch below and is what the
//! E6 experiments exercise).

use crate::api::{FaultStats, SolveOptions};
use crate::arbdefective::{solve_degree_plus_one, ArbConfig, ArbReport, Substrate};
use crate::colorspace::{
    reduce_color_space, reduce_color_space_stats, OldcSolver, ReductionConfig, Theorem11Solver,
};
use crate::ctx::{span, CoreError, OldcCtx};
use crate::kernels::KernelStats;
use crate::params::{practical_kappa, ParamProfile};
use crate::problem::{Color, DefectList};
use ldc_sim::{Bandwidth, Network};

/// Which branch of Theorem 1.4 ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestBranch {
    /// The new `√Δ·polylog Δ + O(log* n)` algorithm (Δ ≲ log² n regime).
    SqrtDelta,
    /// The classic color-class iteration (stand-in for \[GK21\], §S4).
    ClassIteration,
}

/// Outcome report for [`congest_degree_plus_one`].
#[derive(Debug, Clone)]
pub struct CongestReport {
    /// Branch taken.
    pub branch: CongestBranch,
    /// Rounds on the main network.
    pub rounds_main: usize,
    /// Rounds inside substrate sub-networks (0 for the classic branch).
    pub rounds_substrate: usize,
    /// Largest message observed anywhere, in bits.
    pub max_message_bits: u64,
    /// The enforced CONGEST budget, in bits.
    pub bandwidth_bits: u64,
    /// Total messages across the main and all substrate networks.
    pub messages_total: u64,
    /// Total bits across the main and all substrate networks.
    pub bits_total: u64,
    /// Fault accounting for the *main* network (substrate sub-networks
    /// run fault-free; all-zero unless the options carried a
    /// [`crate::api::FaultEnv`]).
    pub faults: FaultStats,
    /// Arbdefective-driver details (√Δ branch only).
    pub arb: Option<ArbReport>,
    /// Kernel cache statistics folded over every OLDC solve of the
    /// pipeline (all-zero for the classic branch, which never runs the
    /// type-keyed kernels).
    pub kernels: KernelStats,
}

impl CongestReport {
    /// Total rounds across all networks involved.
    pub fn rounds_total(&self) -> usize {
        self.rounds_main + self.rounds_substrate
    }
}

/// Algorithmic configuration for [`congest_degree_plus_one`].
///
/// The split with [`SolveOptions`]: `CongestConfig` holds the knobs that
/// define *which computation runs* (CONGEST budget, constant profile,
/// selection seed, branch/substrate choice) and therefore pins the
/// checked-in experiment numbers; `SolveOptions` carries only the
/// *execution environment* (tracer, fault plan + retries, exec mode).
/// This entry point ignores `SolveOptions::bandwidth` / `profile` /
/// `seed` — those live here.
#[derive(Debug, Clone, Copy)]
pub struct CongestConfig {
    /// CONGEST budget = `bandwidth_factor · ⌈log₂ n⌉` bits per message.
    pub bandwidth_factor: u64,
    /// Parameter profile.
    pub profile: ParamProfile,
    /// Selection seed.
    pub seed: u64,
    /// Force a branch (default: pick by the `Δ ≤ log² n` rule).
    pub force_branch: Option<CongestBranch>,
    /// Substrate for the √Δ branch.
    pub substrate: Substrate,
}

impl Default for CongestConfig {
    fn default() -> Self {
        CongestConfig {
            bandwidth_factor: 16,
            profile: ParamProfile::practical_default(),
            seed: 0xC01057,
            force_branch: None,
            substrate: Substrate::Sequential,
        }
    }
}

/// Theorem 1.1 behind Corollary 4.2's message compression: an
/// [`OldcSolver`] whose messages are sized for `p`-color blocks.
#[derive(Debug, Clone, Copy)]
pub struct ReducedTheorem11 {
    /// Block size per reduction level.
    pub p: u64,
    /// `κ(p)` used to apportion auxiliary defects.
    pub kappa_p: f64,
}

impl OldcSolver for ReducedTheorem11 {
    fn solve(
        &self,
        net: &mut Network<'_>,
        ctx: &OldcCtx<'_, '_>,
        lists: &[DefectList],
    ) -> Result<Vec<Option<Color>>, CoreError> {
        let cfg = ReductionConfig {
            p: self.p,
            nu: 1.0,
            kappa_p: self.kappa_p,
        };
        reduce_color_space(net, ctx, lists, cfg, &Theorem11Solver)
    }

    fn solve_stats(
        &self,
        net: &mut Network<'_>,
        ctx: &OldcCtx<'_, '_>,
        lists: &[DefectList],
        kernels: &mut KernelStats,
    ) -> Result<Vec<Option<Color>>, CoreError> {
        let cfg = ReductionConfig {
            p: self.p,
            nu: 1.0,
            kappa_p: self.kappa_p,
        };
        reduce_color_space_stats(net, ctx, lists, cfg, &Theorem11Solver, kernels)
    }
}

/// Solve a `(degree+1)`-list coloring instance in the CONGEST model
/// (Theorem 1.4). `lists[v]` needs more than `deg(v)` colors from
/// `0..space` with `space ≤ poly(Δ)` for the stated bounds.
///
/// `opts` supplies the execution environment: its [`Tracer`](ldc_sim::Tracer) rides on the
/// main network and is propagated into every substrate sub-network (so
/// the span tree accounts for *all* rounds of the pipeline), its
/// [`crate::api::FaultEnv`] — if any — attaches to the *main* network
/// only (the fault model targets the long-lived communication graph, not
/// the solver's internal scratch instances), and its [`ldc_sim::ExecMode`]
/// override applies to the main network. See [`CongestConfig`] for which
/// knobs live where.
///
/// ```
/// use ldc_core::congest::{congest_degree_plus_one, CongestConfig};
/// use ldc_core::SolveOptions;
/// use ldc_graph::generators;
///
/// let g = generators::random_regular(128, 6, 1);
/// let lists: Vec<Vec<u64>> = (0..128).map(|_| (0..7).collect()).collect();
/// let (colors, report) = congest_degree_plus_one(
///     &g, 7, &lists, &CongestConfig::default(), &SolveOptions::default())
/// .unwrap();
/// assert!(report.max_message_bits <= report.bandwidth_bits);
/// for (_, u, v) in g.edges() {
///     assert_ne!(colors[u as usize], colors[v as usize]);
/// }
/// ```
pub fn congest_degree_plus_one(
    g: &ldc_graph::Graph,
    space: u64,
    lists: &[Vec<Color>],
    cfg: &CongestConfig,
    opts: &SolveOptions,
) -> Result<(Vec<Color>, CongestReport), CoreError> {
    let n = g.num_nodes();
    assert_eq!(lists.len(), n);
    let delta = g.max_degree();
    let bandwidth = Bandwidth::congest_log(n, cfg.bandwidth_factor);
    let budget = match bandwidth {
        Bandwidth::Congest { bits_per_message } => bits_per_message,
        Bandwidth::Local => unreachable!(),
    };
    let tracer = opts.tracer.clone();
    let mut net = Network::new(g, bandwidth);
    opts.configure(&mut net);
    let _thm14 = tracer.span(span::THM14);

    // Step 1: Linial's O(Δ²)-coloring in O(log* n) rounds.
    let init = {
        let _linial = tracer.span(span::LINIAL_INIT);
        ldc_classic::linial_coloring(&mut net, None).map_err(CoreError::Sim)?
    };

    // Branch rule: the √Δ pipeline is the paper's contribution for
    // Δ ≲ log² n; above that the classic O(Δ²) baseline loses and GK21
    // (substituted per §S4) would take over.
    let log_n = (n.max(2) as f64).log2();
    let branch = cfg
        .force_branch
        .unwrap_or(if (delta as f64) <= log_n * log_n {
            CongestBranch::SqrtDelta
        } else {
            CongestBranch::ClassIteration
        });

    match branch {
        CongestBranch::ClassIteration => {
            let colors = {
                let _ci = tracer.span(span::CLASS_ITERATION);
                ldc_classic::reduction::class_iteration_list_coloring(&mut net, &init, lists)
                    .map_err(CoreError::Sim)?
            };
            let report = CongestReport {
                branch,
                rounds_main: net.rounds(),
                rounds_substrate: 0,
                max_message_bits: net.metrics().max_message_bits(),
                bandwidth_bits: budget,
                messages_total: net.metrics().total_messages(),
                bits_total: net.metrics().total_bits(),
                faults: FaultStats::from_metrics(net.metrics()),
                arb: None,
                kernels: KernelStats::default(),
            };
            Ok((colors, report))
        }
        CongestBranch::SqrtDelta => {
            // Corollary 4.2: pick p so candidate messages (≤ p + O(log n)
            // bits) fit the budget; then κ_eff = κ(p)^⌈log_p |𝒞|⌉.
            let p = (budget / 2).clamp(8, space.max(8));
            let kappa_p = practical_kappa(cfg.profile, delta as u64, p, init.palette_size());
            let mut levels = 0u32;
            let mut cap = 1u128;
            while cap < u128::from(space) {
                cap = cap.saturating_mul(u128::from(p));
                levels += 1;
            }
            let kappa_eff = kappa_p.powi(levels.max(1) as i32);
            let solver = ReducedTheorem11 { p, kappa_p };
            let arb_cfg = ArbConfig {
                nu: 1.0,
                kappa: kappa_eff,
                substrate: cfg.substrate,
                profile: cfg.profile,
                seed: cfg.seed,
            };
            let (colors, arb) =
                solve_degree_plus_one(&mut net, space, lists, &init, &arb_cfg, &solver)?;
            let report = CongestReport {
                branch,
                rounds_main: net.rounds(),
                rounds_substrate: arb.rounds_substrate,
                max_message_bits: net.metrics().max_message_bits().max(arb.max_message_bits),
                bandwidth_bits: budget,
                messages_total: net.metrics().total_messages() + arb.substrate_messages,
                bits_total: net.metrics().total_bits() + arb.substrate_bits,
                faults: FaultStats::from_metrics(net.metrics()),
                kernels: arb.kernels,
                arb: Some(arb),
            };
            Ok((colors, report))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_proper_list_coloring;
    use ldc_graph::generators;
    use ldc_sim::{FaultPlan, RetryPolicy};

    fn degree_plus_one_lists(g: &ldc_graph::Graph, space: u64, salt: u64) -> Vec<Vec<Color>> {
        g.nodes()
            .map(|v| {
                let need = g.degree(v) + 1;
                let mut l: Vec<Color> = (0..need as u64)
                    .map(|i| (u64::from(v) * 31 + i * 71 + salt) % space)
                    .collect();
                l.sort_unstable();
                l.dedup();
                let mut c = 0;
                while l.len() < need {
                    if !l.contains(&c) {
                        l.push(c);
                    }
                    c += 1;
                }
                l.sort_unstable();
                l
            })
            .collect()
    }

    fn plain(
        g: &ldc_graph::Graph,
        space: u64,
        lists: &[Vec<Color>],
        cfg: &CongestConfig,
    ) -> Result<(Vec<Color>, CongestReport), CoreError> {
        congest_degree_plus_one(g, space, lists, cfg, &SolveOptions::default())
    }

    #[test]
    fn sqrt_branch_solves_within_congest_budget() {
        let g = generators::random_regular(300, 8, 6);
        let space = 256;
        let lists = degree_plus_one_lists(&g, space, 3);
        let cfg = CongestConfig {
            force_branch: Some(CongestBranch::SqrtDelta),
            ..CongestConfig::default()
        };
        let (colors, report) = plain(&g, space, &lists, &cfg).unwrap();
        assert_eq!(validate_proper_list_coloring(&g, &lists, &colors), Ok(()));
        assert!(report.max_message_bits <= report.bandwidth_bits);
        assert_eq!(report.branch, CongestBranch::SqrtDelta);
        assert!(report.faults.is_clean());
    }

    #[test]
    fn classic_branch_solves_within_congest_budget() {
        let g = generators::gnp(200, 0.05, 8);
        let space = 1024;
        let lists = degree_plus_one_lists(&g, space, 9);
        let cfg = CongestConfig {
            force_branch: Some(CongestBranch::ClassIteration),
            ..CongestConfig::default()
        };
        let (colors, report) = plain(&g, space, &lists, &cfg).unwrap();
        assert_eq!(validate_proper_list_coloring(&g, &lists, &colors), Ok(()));
        assert!(report.max_message_bits <= report.bandwidth_bits);
    }

    #[test]
    fn auto_branch_follows_delta_rule() {
        // Δ = 4 ≤ log²(200) ≈ 58: √Δ branch.
        let g = generators::random_regular(200, 4, 1);
        let space = 128;
        let lists = degree_plus_one_lists(&g, space, 1);
        let (_, report) = plain(&g, space, &lists, &CongestConfig::default()).unwrap();
        assert_eq!(report.branch, CongestBranch::SqrtDelta);
    }

    #[test]
    fn auto_branch_uses_classic_for_large_delta() {
        // K24: Δ = 23 > log²(24) ≈ 21 ⇒ the §S4 fallback branch.
        let g = generators::complete(24);
        let space = 24;
        let lists: Vec<Vec<Color>> = (0..24).map(|_| (0..24).collect()).collect();
        let (colors, report) = plain(&g, space, &lists, &CongestConfig::default()).unwrap();
        validate_proper_list_coloring(&g, &lists, &colors).unwrap();
        assert_eq!(report.branch, CongestBranch::ClassIteration);
        assert!(report.arb.is_none());
    }

    #[test]
    fn error_types_render() {
        use crate::ctx::CoreError;
        let e = CoreError::Precondition {
            node: 3,
            detail: "too small".into(),
        };
        assert!(e.to_string().contains("node 3"));
        let e = CoreError::SelectionExhausted {
            node: 1,
            attempts: 48,
        };
        assert!(e.to_string().contains("48"));
        let e = CoreError::PigeonholeFailed {
            node: 2,
            best: 5,
            budget: 1,
        };
        assert!(e.to_string().contains("budget"));
        let e = CoreError::Sim(ldc_sim::SimError::BandwidthExceeded {
            round: 0,
            node: 0,
            port: 0,
            bits: 10,
            limit: 4,
        });
        assert!(e.to_string().contains("CONGEST"));
    }

    #[test]
    fn bootstrap_and_randomized_substrates_work_in_congest() {
        let g = generators::random_regular(160, 6, 21);
        let space = 28;
        let lists = degree_plus_one_lists(&g, space, 2);
        for substrate in [
            crate::arbdefective::Substrate::Randomized,
            crate::arbdefective::Substrate::Bootstrap { levels: 1 },
        ] {
            let cfg = CongestConfig {
                force_branch: Some(CongestBranch::SqrtDelta),
                substrate,
                ..CongestConfig::default()
            };
            let (colors, report) = plain(&g, space, &lists, &cfg).unwrap();
            validate_proper_list_coloring(&g, &lists, &colors).unwrap();
            assert!(
                report.max_message_bits <= report.bandwidth_bits,
                "{substrate:?}"
            );
        }
    }

    #[test]
    fn faulted_options_match_clean_run_under_noop_plan() {
        let g = generators::random_regular(150, 6, 5);
        let space = 64;
        let lists = degree_plus_one_lists(&g, space, 4);
        let cfg = CongestConfig::default();
        let (clean, clean_report) = plain(&g, space, &lists, &cfg).unwrap();
        let opts = SolveOptions::default().with_faults(FaultPlan::new(13), RetryPolicy::default()); // no-op plan
        let (colors, report) = congest_degree_plus_one(&g, space, &lists, &cfg, &opts).unwrap();
        assert_eq!(colors, clean);
        assert_eq!(report.rounds_main, clean_report.rounds_main);
        assert_eq!(report.bits_total, clean_report.bits_total);
        assert!(report.faults.is_clean());
    }

    #[test]
    fn faulted_options_retry_through_transient_errors() {
        let g = generators::random_regular(150, 6, 5);
        let space = 64;
        let lists = degree_plus_one_lists(&g, space, 4);
        let cfg = CongestConfig::default();
        let (clean, _) = plain(&g, space, &lists, &cfg).unwrap();
        let opts = SolveOptions::default().with_faults(
            FaultPlan::new(0xFA).with_error_rate(0.2),
            RetryPolicy {
                max_retries: 25,
                backoff_rounds: 1,
            },
        );
        let (colors, report) = congest_degree_plus_one(&g, space, &lists, &cfg, &opts).unwrap();
        assert_eq!(colors, clean, "absorbed retries must not change output");
        validate_proper_list_coloring(&g, &lists, &colors).unwrap();
        assert!(report.max_message_bits <= report.bandwidth_bits);
        assert!(report.faults.rounds_retried > 0);
    }

    #[test]
    fn standard_delta_plus_one_instance() {
        // The plain (Δ+1)-coloring problem: space = Δ+1, full lists.
        let g = generators::random_regular(150, 6, 5);
        let space = 7;
        let lists: Vec<Vec<Color>> = (0..150).map(|_| (0..7).collect()).collect();
        let (colors, report) = plain(&g, space, &lists, &CongestConfig::default()).unwrap();
        assert_eq!(validate_proper_list_coloring(&g, &lists, &colors), Ok(()));
        assert!(report.max_message_bits <= report.bandwidth_bits);
    }
}
