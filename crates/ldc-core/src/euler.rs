//! Euler-tour balanced orientations (the tool behind Lemma A.2).
//!
//! Orienting the edges of a multigraph along Euler circuits — after pairing
//! up odd-degree vertices with auxiliary matching edges — gives every
//! vertex out-degree at most `⌈deg/2⌉` on the original edges.

/// Orient the multigraph given by `edges` over nodes `0..n` such that every
/// node has out-degree at most `⌈deg/2⌉`.
///
/// Returns one flag per input edge: `true` means the edge is oriented from
/// its first to its second endpoint.
pub fn balanced_orientation(n: usize, edges: &[(u32, u32)]) -> Vec<bool> {
    let m = edges.len();
    // Augment: pair up odd-degree vertices (their count is even).
    let mut deg = vec![0usize; n];
    for &(u, v) in edges {
        deg[u as usize] += 1;
        deg[v as usize] += 1;
    }
    let odd: Vec<u32> = (0..n as u32)
        .filter(|&v| deg[v as usize] % 2 == 1)
        .collect();
    debug_assert!(odd.len() % 2 == 0, "odd-degree vertices come in pairs");
    let mut all_edges: Vec<(u32, u32)> = edges.to_vec();
    for pair in odd.chunks(2) {
        all_edges.push((pair[0], pair[1]));
    }

    // Adjacency with edge indices (each edge appears at both endpoints).
    let mut adj: Vec<Vec<(u32, usize)>> = vec![Vec::new(); n];
    for (idx, &(u, v)) in all_edges.iter().enumerate() {
        adj[u as usize].push((v, idx));
        adj[v as usize].push((u, idx));
    }
    let mut used = vec![false; all_edges.len()];
    let mut cursor = vec![0usize; n];
    let mut forward = vec![false; all_edges.len()];

    // Hierholzer: every component of the augmented graph is Eulerian.
    for start in 0..n as u32 {
        loop {
            // Find an unused edge at `start`.
            while cursor[start as usize] < adj[start as usize].len()
                && used[adj[start as usize][cursor[start as usize]].1]
            {
                cursor[start as usize] += 1;
            }
            if cursor[start as usize] >= adj[start as usize].len() {
                break;
            }
            // Walk a closed trail from `start`; in an even-degree multigraph
            // a trail can only get stuck back at its origin.
            let mut at = start;
            loop {
                while cursor[at as usize] < adj[at as usize].len()
                    && used[adj[at as usize][cursor[at as usize]].1]
                {
                    cursor[at as usize] += 1;
                }
                if cursor[at as usize] >= adj[at as usize].len() {
                    debug_assert_eq!(at, start, "Euler trail must close at its origin");
                    break;
                }
                let (next, idx) = adj[at as usize][cursor[at as usize]];
                used[idx] = true;
                // Orient idx as at → next: forward iff the stored edge's
                // first endpoint is the current trail position.
                forward[idx] = all_edges[idx].0 == at;
                at = next;
            }
        }
    }
    forward.truncate(m);
    forward
}

/// Out-degrees induced by [`balanced_orientation`]'s output on the original
/// edges.
pub fn out_degrees(n: usize, edges: &[(u32, u32)], forward: &[bool]) -> Vec<usize> {
    let mut out = vec![0usize; n];
    for (&(u, v), &f) in edges.iter().zip(forward) {
        if f {
            out[u as usize] += 1;
        } else {
            out[v as usize] += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_balance(n: usize, edges: &[(u32, u32)]) {
        let fwd = balanced_orientation(n, edges);
        assert_eq!(fwd.len(), edges.len());
        let mut deg = vec![0usize; n];
        for &(u, v) in edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let out = out_degrees(n, edges, &fwd);
        for v in 0..n {
            assert!(
                out[v] <= deg[v].div_ceil(2),
                "node {v}: out {} > ⌈{}/2⌉",
                out[v],
                deg[v]
            );
        }
    }

    #[test]
    fn cycle_is_perfectly_balanced() {
        let edges: Vec<(u32, u32)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        check_balance(6, &edges);
        let fwd = balanced_orientation(6, &edges);
        let out = out_degrees(6, &edges, &fwd);
        assert!(out.iter().all(|&o| o == 1));
    }

    #[test]
    fn path_has_odd_endpoints() {
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        check_balance(4, &edges);
    }

    #[test]
    fn star_center_is_balanced() {
        let edges: Vec<(u32, u32)> = (1..8).map(|v| (0, v)).collect();
        check_balance(8, &edges);
        let fwd = balanced_orientation(8, &edges);
        let out = out_degrees(8, &edges, &fwd);
        assert!(out[0] <= 4, "center out-degree {} > 4", out[0]);
    }

    #[test]
    fn parallel_edges_are_fine() {
        let edges = vec![(0, 1), (0, 1), (0, 1), (0, 1)];
        check_balance(2, &edges);
        let fwd = balanced_orientation(2, &edges);
        let out = out_degrees(2, &edges, &fwd);
        assert_eq!(out[0] + out[1], 4);
        assert!(out[0] == 2 && out[1] == 2);
    }

    #[test]
    fn clique_orientation() {
        let mut edges = Vec::new();
        for u in 0..7u32 {
            for v in (u + 1)..7 {
                edges.push((u, v));
            }
        }
        check_balance(7, &edges);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(balanced_orientation(3, &[]).is_empty());
        check_balance(2, &[(0, 1)]);
    }

    #[test]
    fn disconnected_components() {
        let edges = vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)];
        check_balance(6, &edges);
    }
}
