//! Parameter schedules of Section 3 (Eqs. (4), (5)) and the
//! faithful/practical profiles of DESIGN.md §S2.
//!
//! The paper's formulas — `τ(h,𝒞,m) = ⌈8h + 2loglog|𝒞| + 2loglog m + 16⌉`
//! and `τ' = 2^{τ−⌈2h+log 2e⌉}` — are *galactic*: at `β = 64` they demand
//! color lists of millions of entries. `ParamProfile::Faithful` implements
//! them verbatim (used on miniature instances and in unit tests);
//! `ParamProfile::Practical` keeps the same functional form with small
//! constants so shape experiments run at realistic scale. Outputs are
//! always validated exactly regardless of profile.

/// `log₂log₂(max(x, 4))` — the double-logarithm used by Eq. (4).
pub fn loglog(x: u64) -> f64 {
    (x.max(4) as f64).log2().log2()
}

/// Constant-selection profile (see DESIGN.md §S2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamProfile {
    /// The paper's constants, verbatim.
    Faithful,
    /// Scaled-down constants with the same functional form.
    Practical {
        /// Multiplier on the `h + loglog|𝒞| + loglog m` term of `τ`.
        tau_scale: f64,
        /// Floor for `τ`.
        tau_min: u64,
        /// The constant `α` of Theorem 1.1 / Lemma 3.6.
        alpha: u64,
    },
}

impl ParamProfile {
    /// Defaults tuned so the E2–E8 experiments run at realistic scale with
    /// zero selection retries (see EXPERIMENTS.md).
    pub fn practical_default() -> Self {
        ParamProfile::Practical {
            tau_scale: 1.0,
            tau_min: 6,
            alpha: 4,
        }
    }

    /// The smallest constants at which the engines still converge reliably
    /// (a few selection retries allowed). Used by the large-Δ shape
    /// experiments, where `κ` must be small for the asymptotic regimes of
    /// Theorems 1.3/1.4 to become visible at lab scale.
    pub fn practical_aggressive() -> Self {
        ParamProfile::Practical {
            tau_scale: 0.5,
            tau_min: 3,
            alpha: 2,
        }
    }

    /// Eq. (4): `τ(h, 𝒞, m)`.
    pub fn tau(&self, h: u64, space: u64, m: u64) -> u64 {
        match *self {
            ParamProfile::Faithful => {
                (8.0 * h as f64 + 2.0 * loglog(space) + 2.0 * loglog(m) + 16.0).ceil() as u64
            }
            ParamProfile::Practical {
                tau_scale, tau_min, ..
            } => {
                let raw = tau_scale * (h as f64 + loglog(space) + loglog(m));
                (raw.ceil() as u64).max(tau_min)
            }
        }
    }

    /// Eq. (5): `τ'(h, 𝒞, m) = 2^{τ − ⌈2h + log(2e)⌉}`, clamped to
    /// `[1, 2⁴⁰]` so it stays representable (only the exact tiny-parameter
    /// greedy ever materializes `τ'` candidate sets).
    pub fn tau_prime(&self, h: u64, space: u64, m: u64) -> u64 {
        let tau = self.tau(h, space, m);
        let drop = (2.0 * h as f64 + (2.0 * std::f64::consts::E).log2()).ceil() as u64;
        let exp = tau.saturating_sub(drop).min(40);
        1u64 << exp
    }

    /// The "sufficiently large constant" `α`.
    pub fn alpha(&self) -> u64 {
        match *self {
            ParamProfile::Faithful => 16,
            ParamProfile::Practical { alpha, .. } => alpha,
        }
    }
}

/// The defect mass per `β²` that the Theorem 1.1 engine needs in practice
/// (the profile-scaled form of Eq. (6)'s `κ`). The *faithful* composition
/// constant `α²·τ·τ̄·h'²` is galactic — see DESIGN.md §S2; experiments
/// E2/E8 chart how little slack is really needed.
pub fn practical_kappa(profile: ParamProfile, beta: u64, space: u64, m: u64) -> f64 {
    let h = u64::from((2 * beta.max(1)).next_power_of_two().ilog2()).max(1);
    let tau = profile.tau(h, space, m);
    // Lemma 3.7 uses factor-4 γ-classes: 4^i can reach 16·β²/(d+1)², so the
    // per-bucket bar ℓ ≥ 2·4^i·τ translates to Σ(d+1)² ≥ ~32τβ²; the α/4
    // factor keeps the aggressive profile proportionally cheaper.
    10.0 * profile.alpha() as f64 * tau as f64
}

/// The γ-class of a node (Section 3.2.3): the smallest `i ≥ 1` such that
/// `2^i ≥ factor·num/den` (`factor = 2` for the basic algorithm, `4` in
/// Lemma 3.7).
pub fn gamma_class(factor: u64, num: u64, den: u64) -> u32 {
    debug_assert!(den > 0);
    let mut i = 1u32;
    // 2^i ≥ factor·num/den  ⇔  2^i · den ≥ factor · num.
    while (1u128 << i) * u128::from(den) < u128::from(factor) * u128::from(num) {
        i += 1;
    }
    i
}

/// `k_i = 2^i · τ` — the size of the `P1` output set `C_v` for γ-class `i`.
pub fn k_of_class(i: u32, tau: u64) -> u64 {
    (1u64 << i.min(40)) * tau
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loglog_is_monotone_and_small() {
        assert!(loglog(2) <= loglog(16));
        assert!((loglog(16) - 2.0).abs() < 1e-9);
        assert!((loglog(256) - 3.0).abs() < 1e-9);
        assert!(loglog(u64::MAX) < 6.01);
    }

    #[test]
    fn faithful_tau_matches_formula() {
        let p = ParamProfile::Faithful;
        // h = 3, |𝒞| = 256 (loglog = 3), m = 16 (loglog = 2):
        // 24 + 6 + 4 + 16 = 50.
        assert_eq!(p.tau(3, 256, 16), 50);
    }

    #[test]
    fn practical_tau_is_small_but_grows_with_h() {
        let p = ParamProfile::practical_default();
        let t1 = p.tau(1, 1 << 20, 1 << 10);
        let t8 = p.tau(8, 1 << 20, 1 << 10);
        assert!(t1 >= 6);
        assert!(t8 > t1);
        assert!(t8 < 30);
    }

    #[test]
    fn tau_prime_clamped() {
        let p = ParamProfile::Faithful;
        // Large τ ⇒ hits the 2⁴⁰ clamp.
        assert_eq!(p.tau_prime(10, 1 << 30, 1 << 20), 1u64 << 40);
        let q = ParamProfile::Practical {
            tau_scale: 0.1,
            tau_min: 1,
            alpha: 2,
        };
        // τ = 1, drop ≥ 2·h ⇒ exponent saturates at 0 ⇒ τ' = 1.
        assert_eq!(q.tau_prime(5, 4, 4), 1);
    }

    #[test]
    fn gamma_class_thresholds() {
        // 2β/(d+1) = 8 ⇒ class 3.
        assert_eq!(gamma_class(2, 4, 1), 3);
        // 2β/(d+1) = 1 ⇒ class 1 (classes start at 1).
        assert_eq!(gamma_class(2, 1, 2), 1);
        // Lemma 3.7's factor-4 version.
        assert_eq!(gamma_class(4, 6, 1), 5); // 4·6 = 24 ≤ 32 = 2⁵
                                             // Exact power: 4·8/1 = 32 = 2⁵.
        assert_eq!(gamma_class(4, 8, 1), 5);
    }

    #[test]
    fn k_scales_geometrically() {
        assert_eq!(k_of_class(1, 6), 12);
        assert_eq!(k_of_class(4, 6), 96);
    }
}
