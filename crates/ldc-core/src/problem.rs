//! Problem definitions: list defective coloring instances (Definition 1.1).
//!
//! A *list defective coloring* instance equips every node `v` with a color
//! list `L_v ⊆ 𝒞` and a defect function `d_v : L_v → ℕ₀`; a solution colors
//! each node from its list such that at most `d_v(φ(v))` neighbors (or
//! *out*-neighbors, in the oriented/arbdefective variants) share its color.

use ldc_graph::{DirectedView, Graph, NodeId};

/// A color. The paper takes `𝒞 ⊆ ℕ`; we use `u64` values below the space
/// size.
pub type Color = u64;

/// The color space `𝒞 = {0, …, size−1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColorSpace {
    /// Number of colors in the space.
    pub size: u64,
}

impl ColorSpace {
    /// A space of `size` colors.
    pub fn new(size: u64) -> Self {
        ColorSpace { size }
    }

    /// Whether `c` is a color of this space.
    pub fn contains(&self, c: Color) -> bool {
        c < self.size
    }

    /// Bits to name one color.
    pub fn color_bits(&self) -> u64 {
        ldc_sim::bits_for_value(self.size.saturating_sub(1)).max(1)
    }
}

/// One node's color list with per-color defects, sorted by color.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DefectList {
    entries: Vec<(Color, u64)>,
}

impl DefectList {
    /// Build from `(color, defect)` pairs; sorts and rejects duplicates.
    ///
    /// # Panics
    /// Panics on duplicate colors.
    pub fn new(mut entries: Vec<(Color, u64)>) -> Self {
        entries.sort_unstable_by_key(|&(c, _)| c);
        for w in entries.windows(2) {
            assert_ne!(w[0].0, w[1].0, "duplicate color {} in defect list", w[0].0);
        }
        DefectList { entries }
    }

    /// A list where every color has the same defect.
    pub fn uniform(colors: impl IntoIterator<Item = Color>, defect: u64) -> Self {
        Self::new(colors.into_iter().map(|c| (c, defect)).collect())
    }

    /// Number of colors `|L_v|`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The defect of color `c`, if `c ∈ L_v`.
    pub fn defect(&self, c: Color) -> Option<u64> {
        self.entries
            .binary_search_by_key(&c, |&(x, _)| x)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Whether `c ∈ L_v`.
    pub fn contains(&self, c: Color) -> bool {
        self.defect(c).is_some()
    }

    /// Iterate `(color, defect)` in color order.
    pub fn iter(&self) -> impl Iterator<Item = (Color, u64)> + '_ {
        self.entries.iter().copied()
    }

    /// Just the colors, sorted.
    pub fn colors(&self) -> impl Iterator<Item = Color> + '_ {
        self.entries.iter().map(|&(c, _)| c)
    }

    /// `Σ_{x∈L} (d(x)+1)` — the existence budget of Lemma A.1 / Eq. (1).
    pub fn linear_mass(&self) -> u64 {
        self.entries.iter().map(|&(_, d)| d + 1).sum()
    }

    /// `Σ_{x∈L} (2·d(x)+1)` — the arbdefective budget of Eq. (2).
    pub fn arb_mass(&self) -> u64 {
        self.entries.iter().map(|&(_, d)| 2 * d + 1).sum()
    }

    /// `Σ_{x∈L} (d(x)+1)²` — the OLDC budget of Theorem 1.1 / Eq. (3).
    pub fn square_mass(&self) -> u128 {
        self.entries
            .iter()
            .map(|&(_, d)| u128::from(d + 1).pow(2))
            .sum()
    }

    /// `Σ_{x∈L} (d(x)+1)^{1+ν}` for real `ν ≥ 0` (Theorem 1.2 bookkeeping).
    pub fn power_mass(&self, nu: f64) -> f64 {
        self.entries
            .iter()
            .map(|&(_, d)| ((d + 1) as f64).powf(1.0 + nu))
            .sum()
    }

    /// Retain only the colors satisfying `keep`.
    pub fn filtered<F: Fn(Color, u64) -> bool>(&self, keep: F) -> DefectList {
        DefectList {
            entries: self
                .entries
                .iter()
                .copied()
                .filter(|&(c, d)| keep(c, d))
                .collect(),
        }
    }

    /// Map the defects (e.g. reduce budgets by already-spent defect).
    pub fn map_defects<F: Fn(Color, u64) -> u64>(&self, f: F) -> DefectList {
        DefectList {
            entries: self.entries.iter().map(|&(c, d)| (c, f(c, d))).collect(),
        }
    }

    /// Minimum defect over the list (`None` when empty).
    pub fn min_defect(&self) -> Option<u64> {
        self.entries.iter().map(|&(_, d)| d).min()
    }
}

impl FromIterator<(Color, u64)> for DefectList {
    fn from_iter<T: IntoIterator<Item = (Color, u64)>>(iter: T) -> Self {
        DefectList::new(iter.into_iter().collect())
    }
}

/// A list defective coloring instance on an *undirected* graph.
#[derive(Debug, Clone)]
pub struct LdcInstance<'g> {
    /// The communication / conflict graph.
    pub graph: &'g Graph,
    /// The color space.
    pub space: ColorSpace,
    /// Per-node defect lists.
    pub lists: Vec<DefectList>,
}

impl<'g> LdcInstance<'g> {
    /// Assemble an instance, checking shapes and palette bounds.
    ///
    /// # Panics
    /// Panics if `lists.len() != n` or a list color is outside the space.
    pub fn new(graph: &'g Graph, space: ColorSpace, lists: Vec<DefectList>) -> Self {
        assert_eq!(lists.len(), graph.num_nodes(), "one list per node");
        for (v, l) in lists.iter().enumerate() {
            for c in l.colors() {
                assert!(
                    space.contains(c),
                    "node {v}: color {c} outside space {:?}",
                    space
                );
            }
        }
        LdcInstance {
            graph,
            space,
            lists,
        }
    }

    /// Eq. (1): `Σ (d+1) > deg(v)` for every node — the existence condition
    /// of Lemma A.1. Returns the first violating node.
    pub fn check_existence_condition(&self) -> Result<(), NodeId> {
        for v in self.graph.nodes() {
            if self.lists[v as usize].linear_mass() <= self.graph.degree(v) as u64 {
                return Err(v);
            }
        }
        Ok(())
    }

    /// Eq. (2): `Σ (2d+1) > deg(v)` — the arbdefective existence condition
    /// of Lemma A.2.
    pub fn check_arb_existence_condition(&self) -> Result<(), NodeId> {
        for v in self.graph.nodes() {
            if self.lists[v as usize].arb_mass() <= self.graph.degree(v) as u64 {
                return Err(v);
            }
        }
        Ok(())
    }

    /// The maximum list size `Λ`.
    pub fn lambda(&self) -> usize {
        self.lists.iter().map(DefectList::len).max().unwrap_or(0)
    }
}

/// An *oriented* list defective coloring (OLDC) instance: defects bind only
/// against out-neighbors of the [`DirectedView`].
#[derive(Debug, Clone)]
pub struct OldcInstance<'g> {
    /// The directed view (communication still bidirectional).
    pub view: DirectedView<'g>,
    /// The color space.
    pub space: ColorSpace,
    /// Per-node defect lists.
    pub lists: Vec<DefectList>,
}

impl<'g> OldcInstance<'g> {
    /// Assemble an oriented instance.
    ///
    /// # Panics
    /// Panics if `lists.len() != n` or a list color is outside the space.
    pub fn new(view: DirectedView<'g>, space: ColorSpace, lists: Vec<DefectList>) -> Self {
        assert_eq!(lists.len(), view.graph().num_nodes(), "one list per node");
        for (v, l) in lists.iter().enumerate() {
            for c in l.colors() {
                assert!(
                    space.contains(c),
                    "node {v}: color {c} outside space {:?}",
                    space
                );
            }
        }
        OldcInstance { view, space, lists }
    }

    /// Eq. (3)-style slack: `min_v Σ(d+1)² / β_v²` — how much square mass
    /// each node has per unit of squared out-degree. The algorithms of
    /// Section 3 need this to be at least `α·κ`.
    pub fn square_slack(&self) -> f64 {
        self.view
            .graph()
            .nodes()
            .map(|v| {
                let beta = self.view.beta(v) as f64;
                self.lists[v as usize].square_mass() as f64 / (beta * beta)
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// The maximum list size `Λ`.
    pub fn lambda(&self) -> usize {
        self.lists.iter().map(DefectList::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldc_graph::generators;

    #[test]
    fn defect_list_masses() {
        let l = DefectList::new(vec![(3, 1), (1, 0), (7, 2)]);
        assert_eq!(l.len(), 3);
        assert_eq!(l.linear_mass(), 2 + 1 + 3);
        assert_eq!(l.arb_mass(), 3 + 1 + 5);
        assert_eq!(l.square_mass(), 4 + 1 + 9);
        assert_eq!(l.defect(3), Some(1));
        assert_eq!(l.defect(4), None);
        let colors: Vec<Color> = l.colors().collect();
        assert_eq!(colors, vec![1, 3, 7]);
    }

    #[test]
    fn power_mass_matches_square_mass_at_nu_one() {
        let l = DefectList::new(vec![(0, 0), (1, 3), (2, 7)]);
        assert!((l.power_mass(1.0) - l.square_mass() as f64).abs() < 1e-9);
        assert!((l.power_mass(0.0) - l.linear_mass() as f64).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "duplicate color")]
    fn rejects_duplicate_colors() {
        DefectList::new(vec![(1, 0), (1, 2)]);
    }

    #[test]
    fn filtered_and_mapped() {
        let l = DefectList::uniform(0..5, 2);
        let f = l.filtered(|c, _| c % 2 == 0);
        assert_eq!(f.len(), 3);
        let m = f.map_defects(|_, d| d - 1);
        assert_eq!(m.defect(0), Some(1));
        assert_eq!(m.min_defect(), Some(1));
    }

    #[test]
    fn existence_conditions_on_clique() {
        // K4 with uniform lists: Σ(d+1) = 4 = Δ+1 > Δ = 3 holds; one color
        // fewer fails.
        let g = generators::complete(4);
        let space = ColorSpace::new(8);
        let ok = LdcInstance::new(
            &g,
            space,
            (0..4).map(|_| DefectList::uniform(0..4, 0)).collect(),
        );
        assert!(ok.check_existence_condition().is_ok());
        let bad = LdcInstance::new(
            &g,
            space,
            (0..4).map(|_| DefectList::uniform(0..3, 0)).collect(),
        );
        assert_eq!(bad.check_existence_condition(), Err(0));
        // Arb condition: Σ(2d+1) with d=0 is the same count.
        assert!(bad.check_arb_existence_condition().is_err());
        let arb_ok = LdcInstance::new(
            &g,
            space,
            (0..4).map(|_| DefectList::uniform(0..2, 1)).collect(),
        );
        assert!(arb_ok.check_arb_existence_condition().is_ok());
    }

    #[test]
    fn oldc_square_slack() {
        let g = generators::ring(6);
        let view = DirectedView::bidirected(&g); // β = 2
        let lists: Vec<DefectList> = (0..6).map(|_| DefectList::uniform(0..16, 1)).collect();
        let inst = OldcInstance::new(view, ColorSpace::new(16), lists);
        // Σ(d+1)² = 16·4 = 64, β² = 4 ⇒ slack 16.
        assert!((inst.square_slack() - 16.0).abs() < 1e-9);
        assert_eq!(inst.lambda(), 16);
    }
}
