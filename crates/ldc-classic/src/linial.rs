//! Linial's coloring \[Lin87\] and Kuhn's defective coloring \[Kuh09\].
//!
//! Both algorithms iterate the one-round polynomial reduction of
//! [`crate::coverfree`]: starting from the unique-id `n`-coloring, each
//! round every node broadcasts its current color and moves to a point of
//! its cover-free set with small coverage. `O(log* n)` proper rounds reach
//! the `O(Δ² log Δ)`-color fixpoint; one final round with defect budget `d`
//! yields a `d`-defective coloring with `O((Δ/(d+1))² )`-ish colors.

use crate::coverfree::PolyScheme;
use ldc_graph::{Graph, ProperColoring};
use ldc_sim::{Network, SimError};

/// Output of [`defective_coloring`]: colors in `0..palette` such that every
/// node has at most `defect` same-colored neighbors.
#[derive(Debug, Clone)]
pub struct DefectiveColoring {
    /// Per-node colors.
    pub colors: Vec<u64>,
    /// Palette size.
    pub palette: u64,
    /// The defect budget the coloring was computed for.
    pub defect: u64,
}

impl DefectiveColoring {
    /// Exact check: every node has at most `defect` same-colored neighbors.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        if self.colors.len() != g.num_nodes() {
            return Err("wrong number of colors".into());
        }
        for v in g.nodes() {
            let c = self.colors[v as usize];
            if c >= self.palette {
                return Err(format!(
                    "node {v} color {c} outside palette {}",
                    self.palette
                ));
            }
            let same = g
                .neighbors(v)
                .iter()
                .filter(|&&u| self.colors[u as usize] == c)
                .count();
            if same as u64 > self.defect {
                return Err(format!(
                    "node {v} has {same} same-colored neighbors > defect {}",
                    self.defect
                ));
            }
        }
        Ok(())
    }
}

#[derive(Clone)]
struct NodeState {
    color: u64,
}

/// One reduction round on the network: all nodes broadcast their color and
/// apply `scheme.reduce` with defect budget `d`.
fn reduction_round(
    net: &mut Network<'_>,
    states: &mut [NodeState],
    scheme: PolyScheme,
    d: u64,
) -> Result<(), SimError> {
    net.broadcast_exchange(
        states,
        |_, s| Some(s.color),
        |_, s, inbox| {
            let neighbor_colors: Vec<u64> = inbox.iter().map(|(_, &m)| m).collect();
            s.color = scheme.reduce(s.color, &neighbor_colors, d);
        },
    )
}

/// Linial's algorithm: a proper `O(Δ² log Δ)`-coloring in `O(log* m₀)`
/// rounds, starting from the proper `m₀`-coloring `initial` (defaults to
/// the id coloring when `None`).
pub fn linial_coloring(
    net: &mut Network<'_>,
    initial: Option<&ProperColoring>,
) -> Result<ProperColoring, SimError> {
    let g = net.graph();
    let delta = g.max_degree() as u64;
    let fallback = ProperColoring::by_id(g);
    let init = initial.unwrap_or(&fallback);
    let mut states: Vec<NodeState> = g
        .nodes()
        .map(|v| NodeState {
            color: init.color(v),
        })
        .collect();
    let mut m = init.palette_size();
    while let Some(scheme) = PolyScheme::choose(m, delta, 0) {
        reduction_round(net, &mut states, scheme, 0)?;
        m = scheme.output_palette();
    }
    let colors: Vec<u64> = states.into_iter().map(|s| s.color).collect();
    Ok(ProperColoring::new(g, colors, m).expect("reduction preserves properness"))
}

/// Kuhn's defective coloring: from a proper `m`-coloring, one extra round
/// yields a `d`-defective coloring with `O((k·Δ/(d+1))²)` colors.
///
/// Internally runs [`linial_coloring`] first so the final defective step
/// starts from a small palette.
pub fn defective_coloring(
    net: &mut Network<'_>,
    initial: Option<&ProperColoring>,
    d: u64,
) -> Result<DefectiveColoring, SimError> {
    let g = net.graph();
    let delta = g.max_degree() as u64;
    let proper = linial_coloring(net, initial)?;
    let m = proper.palette_size();
    let mut states: Vec<NodeState> = g
        .nodes()
        .map(|v| NodeState {
            color: proper.color(v),
        })
        .collect();
    let (palette, used_defective_step) = match PolyScheme::choose(m, delta, d) {
        Some(scheme) if d > 0 => {
            reduction_round(net, &mut states, scheme, d)?;
            (scheme.output_palette(), true)
        }
        _ => (m, false),
    };
    let _ = used_defective_step;
    let colors: Vec<u64> = states.into_iter().map(|s| s.color).collect();
    let out = DefectiveColoring {
        colors,
        palette,
        defect: d,
    };
    debug_assert!(out.validate(g).is_ok());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldc_graph::generators;
    use ldc_sim::Bandwidth;

    #[test]
    fn linial_on_ring_reaches_small_palette_fast() {
        let g = generators::ring(1 << 12);
        let mut net = Network::new(&g, Bandwidth::congest_log(1 << 12, 4));
        let c = linial_coloring(&mut net, None).unwrap();
        assert!(c.validate(&g).is_ok());
        // Δ = 2 ⇒ fixpoint palette is a small constant (q² for small prime q).
        assert!(c.palette_size() <= 121, "palette {}", c.palette_size());
        // log* of 4096 is tiny.
        assert!(net.rounds() <= 6, "rounds {}", net.rounds());
    }

    #[test]
    fn linial_palette_is_quadratic_in_delta() {
        for d in [3usize, 5, 8] {
            let g = generators::random_regular(300, d, 7);
            let mut net = Network::new(&g, Bandwidth::Local);
            let c = linial_coloring(&mut net, None).unwrap();
            assert!(c.validate(&g).is_ok());
            let bound = (40 * d * d) as u64; // generous constant; shape check
            assert!(
                c.palette_size() <= bound,
                "palette {} vs Δ={d}",
                c.palette_size()
            );
        }
    }

    #[test]
    fn defective_coloring_trades_colors_for_defect() {
        let g = generators::random_regular(400, 16, 3);
        let mut net0 = Network::new(&g, Bandwidth::Local);
        let proper = linial_coloring(&mut net0, None).unwrap();
        let mut net = Network::new(&g, Bandwidth::Local);
        let def = defective_coloring(&mut net, None, 4).unwrap();
        def.validate(&g).unwrap();
        assert!(
            def.palette < proper.palette_size(),
            "defective palette {} should beat proper {}",
            def.palette,
            proper.palette_size()
        );
    }

    #[test]
    fn defective_with_zero_defect_is_proper() {
        let g = generators::gnp(150, 0.05, 2);
        let mut net = Network::new(&g, Bandwidth::Local);
        let def = defective_coloring(&mut net, None, 0).unwrap();
        def.validate(&g).unwrap();
        let proper = ProperColoring::new(&g, def.colors.clone(), def.palette);
        assert!(proper.is_ok());
    }

    #[test]
    fn works_from_custom_initial_coloring() {
        let g = generators::torus(6, 6);
        let greedy = ldc_graph::coloring::greedy_by_id(&g);
        let mut net = Network::new(&g, Bandwidth::Local);
        let c = linial_coloring(&mut net, Some(&greedy)).unwrap();
        assert!(c.validate(&g).is_ok());
        assert!(c.palette_size() <= greedy.palette_size().max(25 * 25));
    }

    #[test]
    fn congest_budget_suffices_for_linial() {
        // Colors stay ≤ n² throughout, so 4·log n bits per message suffice.
        let g = generators::gnp(500, 0.02, 11);
        let mut net = Network::new(&g, Bandwidth::congest_log(500, 4));
        let c = linial_coloring(&mut net, None);
        assert!(c.is_ok());
    }
}
