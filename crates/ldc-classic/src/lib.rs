//! Classic distributed-coloring substrates and baselines.
//!
//! The paper's algorithms stand on a stack of classic results, all of which
//! are implemented here from scratch against the `ldc-sim` round engine:
//!
//! * [`coverfree`] — polynomial set systems over `F_q` (the combinatorial
//!   core of Linial's algorithm and of Kuhn's defective coloring),
//! * [`linial`] — Linial's `O(Δ²)`-coloring in `O(log* n)` rounds
//!   \[Lin87\] and Kuhn's `d`-defective `O((Δ/d)²)`-coloring \[Kuh09\],
//! * [`arbdefective`] — a `d`-arbdefective `q`-coloring substrate with the
//!   interface of \[BEG18\] (see DESIGN.md §S3 for the substitution note),
//! * [`reduction`] — standard color-class elimination from an `m`-coloring
//!   down to `(Δ+1)` colors (the `O(Δ² + log* n)`-style baseline),
//! * [`greedy`] — sequential greedy reference solvers,
//! * [`luby`] — a randomized `O(log n)`-style baseline,
//! * [`list_baseline`] — a LOCAL `(degree+1)`-list coloring baseline that
//!   ships whole color lists in its messages (`Θ(Δ·log|𝒞|)` bits), the
//!   regime Theorem 1.4 improves on in CONGEST.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbdefective;
pub mod coverfree;
pub mod greedy;
pub mod hpartition;
pub mod linial;
pub mod list_baseline;
pub mod luby;
pub mod reduction;

pub use arbdefective::{randomized_arbdefective, sequential_arbdefective, ArbdefectiveColoring};
pub use hpartition::{h_partition, HPartition};
pub use linial::{defective_coloring, linial_coloring, DefectiveColoring};
