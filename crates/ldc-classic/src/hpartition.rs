//! H-partition / Nash–Williams forest decomposition \[Barenboim–Elkin'10\].
//!
//! Arbdefective colorings (the paper's Definition 1.1, third bullet)
//! generalize the *arboricity decompositions* of \[BE10\]: an H-partition
//! with degree parameter `(2+ε)·a` splits the nodes of a graph of
//! arboricity `≤ a` into `O(log n / ε)` layers such that every node has at
//! most `(2+ε)·a` neighbors in its own or higher layers; orienting every
//! edge toward the higher layer (ties by id) bounds all out-degrees by
//! `(2+ε)·a`. This module implements the classic `O(log n)`-round
//! peeling algorithm and is used by tests and experiments as the
//! low-arboricity counterpoint to the paper's decompositions.

use ldc_graph::orientation::EdgeDir;
use ldc_graph::{Graph, Orientation};
use ldc_sim::{Network, SimError};

/// Result of [`h_partition`].
#[derive(Debug, Clone)]
pub struct HPartition {
    /// Layer index per node (`0` peels first).
    pub layer: Vec<u32>,
    /// Number of layers used.
    pub layers: u32,
    /// Orientation with out-degree at most `ceil((2+ε)·a)`.
    pub orientation: Orientation,
    /// The degree bound every node satisfied when it was peeled.
    pub bound: u64,
}

impl HPartition {
    /// Exact check of the H-partition contract.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        for v in g.nodes() {
            let lv = self.layer[v as usize];
            let same_or_higher = g
                .neighbors(v)
                .iter()
                .filter(|&&u| self.layer[u as usize] >= lv)
                .count() as u64;
            if same_or_higher > self.bound {
                return Err(format!(
                    "node {v} (layer {lv}) has {same_or_higher} same-or-higher neighbors > {}",
                    self.bound
                ));
            }
            let out = g
                .incident_edges(v)
                .iter()
                .filter(|&&e| self.orientation.is_out(g, e, v))
                .count() as u64;
            if out > self.bound {
                return Err(format!("node {v} out-degree {out} > {}", self.bound));
            }
        }
        Ok(())
    }
}

/// Compute an H-partition with degree bound `⌈(2+ε)·a⌉` for a graph of
/// arboricity at most `a`, in `O(log_{1+ε/2} n)` rounds.
///
/// ```
/// use ldc_classic::h_partition;
/// use ldc_graph::generators;
/// use ldc_sim::{Bandwidth, Network};
///
/// let g = generators::complete_tree(63, 2); // arboricity 1
/// let mut net = Network::new(&g, Bandwidth::Local);
/// let h = h_partition(&mut net, 1, 1.0).unwrap();
/// assert!(h.orientation.max_out_degree(&g) <= 3);
/// ```
///
/// # Errors
/// Returns a simulator error on bandwidth violations; panics if `a` is not
/// actually an arboricity upper bound (the peeling then stalls).
pub fn h_partition(net: &mut Network<'_>, a: u64, epsilon: f64) -> Result<HPartition, SimError> {
    assert!(epsilon > 0.0, "ε must be positive");
    let g = net.graph();
    let n = g.num_nodes();
    let bound = ((2.0 + epsilon) * a as f64).ceil() as u64;

    #[derive(Clone)]
    struct S {
        layer: Option<u32>,
        remaining_degree: u64,
    }
    let mut states: Vec<S> = g
        .nodes()
        .map(|v| S {
            layer: None,
            remaining_degree: g.degree(v) as u64,
        })
        .collect();

    let mut current = 0u32;
    // Each iteration peels all nodes whose remaining degree is ≤ bound; a
    // standard density argument peels a constant fraction per iteration for
    // graphs of arboricity ≤ a.
    let cap = 8 + (4.0 * (n.max(2) as f64).ln() / (epsilon / 2.0f64).ln_1p()).ceil() as u32;
    while states.iter().any(|s| s.layer.is_none()) {
        assert!(
            current < cap,
            "H-partition stalled: is {a} really an arboricity upper bound?"
        );
        net.broadcast_exchange(
            &mut states,
            |_, s| (s.layer.is_none() && s.remaining_degree <= bound).then_some(true),
            |_, s, inbox| {
                if s.layer.is_none() && s.remaining_degree <= bound {
                    s.layer = Some(current);
                }
                // Peeled neighbors reduce the remaining degree.
                let peeled = inbox.iter().count() as u64;
                s.remaining_degree = s.remaining_degree.saturating_sub(peeled);
            },
        )?;
        current += 1;
    }

    let layer: Vec<u32> = states.iter().map(|s| s.layer.expect("peeled")).collect();
    // Orient each edge toward the higher (layer, id) endpoint: the tail's
    // out-neighbors are then exactly same-or-higher-layer nodes, which its
    // peeling bound already counted.
    let key = |v: u32| (layer[v as usize], v);
    let dirs: Vec<EdgeDir> = g
        .edges()
        .map(|(_, u, v)| {
            if key(u) < key(v) {
                EdgeDir::Forward
            } else {
                EdgeDir::Backward
            }
        })
        .collect();
    let orientation = Orientation::from_dirs(g, dirs);
    let out = HPartition {
        layer,
        layers: current,
        orientation,
        bound,
    };
    debug_assert!(out.validate(g).is_ok(), "{:?}", out.validate(g));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldc_graph::analysis::arboricity_bounds;
    use ldc_graph::generators;
    use ldc_sim::Bandwidth;

    #[test]
    fn tree_decomposes_with_a_one() {
        let g = generators::complete_tree(127, 2);
        let mut net = Network::new(&g, Bandwidth::congest_log(127, 2));
        let h = h_partition(&mut net, 1, 1.0).unwrap();
        h.validate(&g).unwrap();
        assert!(h.bound <= 3);
        assert!(h.orientation.max_out_degree(&g) <= 3);
    }

    #[test]
    fn planar_like_torus() {
        // Torus is 4-regular, arboricity ≤ 3.
        let g = generators::torus(12, 12);
        let mut net = Network::new(&g, Bandwidth::Local);
        let h = h_partition(&mut net, 3, 0.5).unwrap();
        h.validate(&g).unwrap();
    }

    #[test]
    fn layers_are_logarithmic() {
        let g = generators::preferential_attachment(2000, 3, 7);
        let (_, hi) = arboricity_bounds(&g);
        let mut net = Network::new(&g, Bandwidth::Local);
        let h = h_partition(&mut net, hi as u64, 1.0).unwrap();
        h.validate(&g).unwrap();
        assert!(h.layers as usize <= 2 * 15, "layers = {}", h.layers);
    }

    #[test]
    fn dense_graph_with_true_arboricity() {
        let g = generators::complete(20);
        // K20 has arboricity 10.
        let mut net = Network::new(&g, Bandwidth::Local);
        let h = h_partition(&mut net, 10, 0.2).unwrap();
        h.validate(&g).unwrap();
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn wrong_arboricity_bound_is_detected() {
        let g = generators::complete(24); // arboricity 12
        let mut net = Network::new(&g, Bandwidth::Local);
        let _ = h_partition(&mut net, 2, 0.1);
    }
}
