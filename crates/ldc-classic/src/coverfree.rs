//! Polynomial set systems over `F_q` — the combinatorial engine behind
//! Linial's one-round color reduction and Kuhn's defective variant.
//!
//! A color `c < m` is mapped to the polynomial `p_c` over `F_q` whose
//! coefficients are the base-`q` digits of `c` (degree ≤ `k`, where
//! `q^(k+1) ≥ m`), and then to the point set
//! `S_c = {(x, p_c(x)) : x ∈ F_q} ⊆ [q²]`.
//! Two distinct colors share at most `k` points, so if `q > k·Δ/(d+1)` a
//! node can always pick a point of its own set that is covered by at most
//! `d` neighbor sets (`d = 0` gives Linial's proper reduction, `d > 0`
//! Kuhn's defective one). The new color is the index of that point.

/// Deterministic primality test by trial division (inputs stay far below
/// the range where this matters; `q` is `O(Δ·log m)`).
pub fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    if x % 2 == 0 {
        return x == 2;
    }
    let mut f = 3u64;
    while f.saturating_mul(f) <= x {
        if x % f == 0 {
            return false;
        }
        f += 2;
    }
    true
}

/// Smallest prime `>= x`.
pub fn next_prime(x: u64) -> u64 {
    let mut p = x.max(2);
    while !is_prime(p) {
        p += 1;
    }
    p
}

/// A concrete one-round reduction scheme: colors `0..m` mapped into point
/// sets over `[q] × [q]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolyScheme {
    /// Field size (prime).
    pub q: u64,
    /// Maximum polynomial degree `k`.
    pub k: u64,
    /// Input palette size `m` (requires `q^(k+1) >= m`).
    pub m: u64,
}

impl PolyScheme {
    /// Choose the scheme minimizing the output palette `q²` for reducing an
    /// `m`-coloring on a graph with maximum degree `delta`, tolerating
    /// defect `d` (`d = 0` for a proper reduction).
    ///
    /// Returns `None` when no scheme shrinks the palette (i.e. `q² >= m`
    /// for every degree choice) — the caller has reached the fixpoint.
    pub fn choose(m: u64, delta: u64, d: u64) -> Option<PolyScheme> {
        let mut best: Option<PolyScheme> = None;
        for k in 1..=16u64 {
            // q must satisfy q^(k+1) >= m and q(d+1) > k*delta.
            let lower_cover = k * delta / (d + 1) + 1;
            let lower_field = integer_root_ceil(m, k + 1);
            let q = next_prime(lower_cover.max(lower_field).max(2));
            let cand = PolyScheme { q, k, m };
            if best.map_or(true, |b| cand.output_palette() < b.output_palette()) {
                best = Some(cand);
            }
        }
        best.filter(|s| s.output_palette() < m)
    }

    /// Output palette size `q²`.
    pub fn output_palette(&self) -> u64 {
        self.q * self.q
    }

    /// Evaluate the polynomial of color `c` at `x` (both in `F_q`).
    pub fn eval(&self, c: u64, x: u64) -> u64 {
        debug_assert!(c < self.m || self.m == 0);
        let q = u128::from(self.q);
        let x = u128::from(x % self.q);
        // Horner over the base-q digits of c, most significant first.
        let mut digits = [0u128; 17];
        let mut c = u128::from(c);
        let mut len = 0usize;
        for d in digits.iter_mut().take(self.k as usize + 1) {
            *d = c % q;
            c /= q;
            len += 1;
        }
        let mut acc = 0u128;
        for i in (0..len).rev() {
            acc = (acc * x + digits[i]) % q;
        }
        acc as u64
    }

    /// Given a node's color `c` and the colors of its neighbors, pick the
    /// new color: the point `(x, p_c(x))` covered by at most `d` neighbor
    /// polynomials. Returns the flat point index `x·q + y`.
    ///
    /// # Panics
    /// Panics if no point with coverage ≤ `d` exists, which the scheme's
    /// parameter choice rules out whenever `deg ≤ delta` and all neighbor
    /// colors differ from `c`.
    pub fn reduce(&self, c: u64, neighbor_colors: &[u64], d: u64) -> u64 {
        let q = self.q;
        let mut coverage = vec![0u64; q as usize];
        for &cu in neighbor_colors {
            debug_assert_ne!(cu, c, "reduction requires a proper input coloring");
            for x in 0..q {
                if self.eval(cu, x) == self.eval(c, x) {
                    coverage[x as usize] += 1;
                }
            }
        }
        let x = (0..q)
            .min_by_key(|&x| coverage[x as usize])
            .expect("q >= 2");
        assert!(
            coverage[x as usize] <= d,
            "cover-free property violated: min coverage {} > defect {} (q={}, k={}, deg={})",
            coverage[x as usize],
            d,
            q,
            self.k,
            neighbor_colors.len(),
        );
        x * q + self.eval(c, x)
    }
}

/// `⌈m^(1/r)⌉` by binary search on integers.
fn integer_root_ceil(m: u64, r: u64) -> u64 {
    if m <= 1 {
        return m;
    }
    let mut lo = 1u64;
    let mut hi = m;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pow_at_least(mid, r, m) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Whether `base^exp >= target`, without overflow.
fn pow_at_least(base: u64, exp: u64, target: u64) -> bool {
    let mut acc: u128 = 1;
    for _ in 0..exp {
        acc = acc.saturating_mul(u128::from(base));
        if acc >= u128::from(target) {
            return true;
        }
    }
    acc >= u128::from(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primes() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(!is_prime(1));
        assert!(!is_prime(9));
        assert!(is_prime(101));
        assert_eq!(next_prime(14), 17);
        assert_eq!(next_prime(17), 17);
        assert_eq!(next_prime(0), 2);
    }

    #[test]
    fn integer_roots() {
        assert_eq!(integer_root_ceil(27, 3), 3);
        assert_eq!(integer_root_ceil(28, 3), 4);
        assert_eq!(integer_root_ceil(1, 5), 1);
        assert_eq!(integer_root_ceil(1_000_000, 2), 1000);
        assert_eq!(integer_root_ceil(1_000_001, 2), 1001);
    }

    #[test]
    fn distinct_colors_get_distinct_polynomials() {
        let s = PolyScheme { q: 5, k: 2, m: 125 };
        // Two polynomials of degree ≤ 2 over F_5 agreeing on 3 points are equal,
        // so distinct colors must disagree somewhere.
        for c1 in 0..125 {
            for c2 in (c1 + 1)..125 {
                let agree = (0..5).filter(|&x| s.eval(c1, x) == s.eval(c2, x)).count();
                assert!(agree <= 2, "colors {c1},{c2} agree on {agree} > k points");
            }
        }
    }

    #[test]
    fn eval_matches_horner_by_hand() {
        // c = 1*q^2 + 2*q + 3 with q=7 → p(x) = x² + 2x + 3 … digits are
        // little-endian: c = 3 + 2*7 + 1*49 = 66.
        let s = PolyScheme { q: 7, k: 2, m: 343 };
        let c = 66;
        for x in 0..7u64 {
            assert_eq!(s.eval(c, x), (x * x + 2 * x + 3) % 7);
        }
    }

    #[test]
    fn choose_shrinks_large_palettes() {
        let s = PolyScheme::choose(1_000_000, 10, 0).unwrap();
        assert!(s.output_palette() < 1_000_000);
        assert!(u128::from(s.q).pow(s.k as u32 + 1) >= 1_000_000);
        assert!(s.q > s.k * 10);
    }

    #[test]
    fn choose_respects_defect() {
        // With a defect budget, q can be smaller.
        let proper = PolyScheme::choose(1_000_000, 50, 0).unwrap();
        let defective = PolyScheme::choose(1_000_000, 50, 9).unwrap();
        assert!(defective.output_palette() < proper.output_palette());
    }

    #[test]
    fn choose_reaches_fixpoint() {
        // Palette already small: no shrink possible.
        assert!(PolyScheme::choose(4, 10, 0).is_none());
    }

    #[test]
    fn reduce_picks_conflict_free_point() {
        let s = PolyScheme::choose(1000, 3, 0).unwrap();
        // Node color 5, neighbors 7, 12, 999.
        let nc = [7, 12, 999];
        let p = s.reduce(5, &nc, 0);
        assert!(p < s.output_palette());
        // The chosen point must differ from every neighbor's point choices?
        // Stronger: the point is not on ANY neighbor polynomial.
        let (x, y) = (p / s.q, p % s.q);
        assert_eq!(s.eval(5, x), y);
        for &c in &nc {
            assert_ne!(s.eval(c, x), y);
        }
    }
}
