//! A `d`-arbdefective `q`-coloring substrate.
//!
//! Interface of \[BEG18\] (used by the paper's Theorem 1.3): partition the
//! nodes into `q` *buckets* together with an edge orientation such that
//! every node has at most `d` out-neighbors in its own bucket.
//!
//! Per DESIGN.md §S3 this implementation substitutes BEG18's
//! locally-iterative technique with an equally correct two-step scheme:
//!
//! 1. Kuhn's `⌊d/2⌋`-defective coloring (`O(log* n)` rounds,
//!    `c₀ = O((Δ/(d+1))²)` classes), then
//! 2. a sequential sweep over the defective classes (`c₀` rounds): when a
//!    node's class is processed it joins the bucket currently least used
//!    among its already-decided neighbors, and edges are oriented from
//!    later- to earlier-deciding endpoints (ties by node id).
//!
//! With `q ≥ 4Δ/(d+1)` the pigeonhole argument bounds the same-bucket
//! out-degree by `⌊(d+1)/4⌋ + ⌊d/2⌋ ≤ d`. The faster
//! `Õ(√(Δ/(d+1)))`-round route is `ldc-core`'s Theorem 1.3 bootstrap,
//! which uses this substrate only at the base of its recursion.

use crate::linial::defective_coloring;
use ldc_graph::orientation::EdgeDir;
use ldc_graph::{Graph, Orientation, ProperColoring};
use ldc_sim::{Network, SimError};

/// Result of an arbdefective coloring: buckets plus an orientation.
#[derive(Debug, Clone)]
pub struct ArbdefectiveColoring {
    /// Per-node bucket in `0..q`.
    pub buckets: Vec<u64>,
    /// Number of buckets.
    pub q: u64,
    /// Arbdefect budget `d`.
    pub arbdefect: u64,
    /// Orientation witnessing the arbdefect bound.
    pub orientation: Orientation,
}

impl ArbdefectiveColoring {
    /// Exact check: every node has at most `arbdefect` out-neighbors in its
    /// own bucket.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        if self.buckets.len() != g.num_nodes() {
            return Err("wrong number of buckets".into());
        }
        for v in g.nodes() {
            let b = self.buckets[v as usize];
            if b >= self.q {
                return Err(format!("node {v} bucket {b} out of range 0..{}", self.q));
            }
            let mut out_same = 0u64;
            for &e in g.incident_edges(v) {
                let u = g.other_endpoint(e, v);
                if self.orientation.is_out(g, e, v) && self.buckets[u as usize] == b {
                    out_same += 1;
                }
            }
            if out_same > self.arbdefect {
                return Err(format!(
                    "node {v} has {out_same} same-bucket out-neighbors > arbdefect {}",
                    self.arbdefect
                ));
            }
        }
        Ok(())
    }

    /// The smallest bucket count this implementation supports for a graph
    /// of maximum degree `delta` and arbdefect `d`.
    pub fn min_buckets(delta: u64, d: u64) -> u64 {
        ((4 * delta).div_ceil(d + 1)).max(1)
    }
}

#[derive(Clone)]
struct NodeState {
    class: u64,
    bucket: Option<u64>,
    decide_round: u64,
    /// How many decided neighbors sit in each bucket.
    neighbor_bucket_counts: Vec<u64>,
}

/// Compute a `d`-arbdefective `q`-coloring in `O((Δ/(d+1))² + log* n)`
/// rounds. `q` must be at least [`ArbdefectiveColoring::min_buckets`].
///
/// # Errors
/// Propagates simulator errors (CONGEST violations).
///
/// # Panics
/// Panics if `q` is below the supported minimum.
pub fn sequential_arbdefective(
    net: &mut Network<'_>,
    initial: Option<&ProperColoring>,
    d: u64,
    q: u64,
) -> Result<ArbdefectiveColoring, SimError> {
    let g = net.graph();
    let delta = g.max_degree() as u64;
    let min_q = ArbdefectiveColoring::min_buckets(delta, d);
    assert!(
        q >= min_q,
        "q = {q} buckets insufficient: need at least {min_q} for Δ = {delta}, d = {d}"
    );
    let def = defective_coloring(net, initial, d / 2)?;
    let c0 = def.palette;

    let mut states: Vec<NodeState> = g
        .nodes()
        .map(|v| NodeState {
            class: def.colors[v as usize],
            bucket: None,
            decide_round: 0,
            neighbor_bucket_counts: vec![0; q as usize],
        })
        .collect();

    for t in 0..c0 {
        // Nodes of class t decide now, based on decisions heard so far, and
        // announce their bucket; everyone updates neighbor counts.
        for s in states.iter_mut() {
            if s.class == t {
                let b = (0..q)
                    .min_by_key(|&b| s.neighbor_bucket_counts[b as usize])
                    .expect("q >= 1");
                s.bucket = Some(b);
                s.decide_round = t;
            }
        }
        net.broadcast_exchange(
            &mut states,
            |_, s| {
                if s.class == t {
                    Some(s.bucket.expect("just decided"))
                } else {
                    None
                }
            },
            |_, s, inbox| {
                for (_, &b) in inbox.iter() {
                    s.neighbor_bucket_counts[b as usize] += 1;
                }
            },
        )?;
    }

    let buckets: Vec<u64> = states
        .iter()
        .map(|s| s.bucket.expect("all classes processed"))
        .collect();
    // Orient each edge from the later-deciding endpoint to the earlier one
    // (ties broken toward the smaller id), witnessing the arbdefect bound.
    let later = |v: u32| (states[v as usize].decide_round, v);
    let dirs: Vec<EdgeDir> = g
        .edges()
        .map(|(_, u, v)| {
            // Forward means u -> v (tail u); we want tail = later endpoint.
            if later(u) > later(v) {
                EdgeDir::Forward
            } else {
                EdgeDir::Backward
            }
        })
        .collect();
    let orientation = Orientation::from_dirs(g, dirs);
    let out = ArbdefectiveColoring {
        buckets,
        q,
        arbdefect: d,
        orientation,
    };
    debug_assert!(out.validate(g).is_ok(), "{:?}", out.validate(g));
    Ok(out)
}

/// Randomized `d`-arbdefective `q`-coloring in `O(log n)` rounds w.h.p.
/// (seeded, deterministic given the seed).
///
/// Every unsettled node draws a uniform bucket; it *settles* if its
/// same-bucket out-degree — toward already-settled neighbors and same-round
/// neighbors of smaller id (the orientation is "later/larger → earlier/
/// smaller") — is at most `d`. Settled nodes can never be violated later
/// because later settlers point *toward* them. Needs `q·(d+1) ≥ 2Δ` for
/// constant per-round settle probability.
///
/// This is the fast substrate option for the shape experiments (DESIGN.md
/// §S3); outputs satisfy exactly the same contract as
/// [`sequential_arbdefective`] and are validated by the same checker.
pub fn randomized_arbdefective(
    net: &mut Network<'_>,
    d: u64,
    q: u64,
    seed: u64,
) -> Result<ArbdefectiveColoring, SimError> {
    let g = net.graph();
    let delta = g.max_degree() as u64;
    assert!(
        q * (d + 1) >= 2 * delta.max(1),
        "need q(d+1) ≥ 2Δ for convergence"
    );

    #[derive(Clone)]
    struct S {
        rng: ldc_rand::Rng,
        draw: u64,
        settled: bool,
        settle_round: u64,
        nb_bucket: Vec<Option<(u64, bool)>>, // (bucket, settled?)
    }
    let mut states: Vec<S> = g
        .nodes()
        .map(|v| S {
            rng: ldc_rand::Rng::seed_from_u64(
                seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(u64::from(v) + 1)),
            ),
            draw: 0,
            settled: false,
            settle_round: 0,
            nb_bucket: vec![None; g.degree(v)],
        })
        .collect();

    let mut round = 0u64;
    loop {
        round += 1;
        assert!(round < 64 * 64, "randomized arbdefective did not converge");
        for s in states.iter_mut().filter(|s| !s.settled) {
            s.draw = s.rng.gen_range(0..q);
        }
        net.broadcast_exchange(
            &mut states,
            |_, s| Some((s.draw, s.settled)),
            |v, s, inbox| {
                for (p, &(b, settled)) in inbox.iter() {
                    s.nb_bucket[p] = Some((b, settled));
                }
                if s.settled {
                    return;
                }
                // Out-edges: settled neighbors, plus same-round unsettled
                // neighbors with smaller id.
                let mut out_same = 0u64;
                for (p, &u) in g.neighbors(v).iter().enumerate() {
                    if let Some((b, settled)) = s.nb_bucket[p] {
                        if b == s.draw && (settled || u < v) {
                            out_same += 1;
                        }
                    }
                }
                if out_same <= d {
                    s.settled = true;
                    s.settle_round = round;
                }
            },
        )?;
        if states.iter().all(|s| s.settled) {
            break;
        }
    }

    let buckets: Vec<u64> = states.iter().map(|s| s.draw).collect();
    // Orientation: later settle round → earlier; ties toward the smaller id
    // (matching the settling rule above).
    let later = |v: u32| (states[v as usize].settle_round, v);
    let dirs: Vec<EdgeDir> = g
        .edges()
        .map(|(_, u, v)| {
            if later(u) > later(v) {
                EdgeDir::Forward
            } else {
                EdgeDir::Backward
            }
        })
        .collect();
    let orientation = Orientation::from_dirs(g, dirs);
    let out = ArbdefectiveColoring {
        buckets,
        q,
        arbdefect: d,
        orientation,
    };
    debug_assert!(out.validate(g).is_ok(), "{:?}", out.validate(g));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldc_graph::generators;
    use ldc_sim::Bandwidth;

    fn check(g: &Graph, d: u64) {
        let q = ArbdefectiveColoring::min_buckets(g.max_degree() as u64, d);
        let mut net = Network::new(g, Bandwidth::Local);
        let a = sequential_arbdefective(&mut net, None, d, q).unwrap();
        a.validate(g).unwrap();
        assert_eq!(a.q, q);
    }

    #[test]
    fn arbdefective_on_regular_graphs() {
        for d in [0u64, 1, 2, 5] {
            check(&generators::random_regular(200, 8, 3), d);
        }
    }

    #[test]
    fn arbdefective_on_clique() {
        for d in [0u64, 3, 10] {
            check(&generators::complete(24), d);
        }
    }

    #[test]
    fn arbdefective_on_gnp() {
        check(&generators::gnp(300, 0.05, 17), 3);
    }

    #[test]
    fn zero_arbdefect_buckets_are_independent_given_orientation() {
        let g = generators::torus(8, 8);
        let mut net = Network::new(&g, Bandwidth::Local);
        let q = ArbdefectiveColoring::min_buckets(4, 0);
        let a = sequential_arbdefective(&mut net, None, 0, q).unwrap();
        // d = 0: *oriented* same-bucket degree is 0, i.e. buckets are
        // independent sets (every same-bucket edge would be out for one side).
        for (_, u, v) in g.edges() {
            assert_ne!(a.buckets[u as usize], a.buckets[v as usize]);
        }
    }

    #[test]
    fn round_complexity_is_classes_plus_logstar() {
        let g = generators::random_regular(500, 10, 9);
        let d = 4;
        let q = ArbdefectiveColoring::min_buckets(10, d);
        let mut net = Network::new(&g, Bandwidth::congest_log(500, 8));
        sequential_arbdefective(&mut net, None, d, q).unwrap();
        // c₀ is O((Δ/(d+1))²) = O(4); plus a handful of Linial rounds.
        assert!(net.rounds() < 200, "rounds = {}", net.rounds());
    }

    #[test]
    fn randomized_matches_contract() {
        for (d, seed) in [(0u64, 1u64), (2, 2), (5, 3)] {
            let g = generators::random_regular(200, 10, seed);
            let q = (2 * 10u64).div_ceil(d + 1).max(2);
            let mut net = Network::new(&g, Bandwidth::congest_log(200, 4));
            let a = randomized_arbdefective(&mut net, d, q, 77 + seed).unwrap();
            a.validate(&g).unwrap();
            assert!(net.rounds() <= 64, "rounds {}", net.rounds());
        }
    }

    #[test]
    fn randomized_is_deterministic_per_seed() {
        let g = generators::gnp(120, 0.06, 5);
        let delta = g.max_degree() as u64;
        let run = |seed| {
            let mut net = Network::new(&g, Bandwidth::Local);
            randomized_arbdefective(&mut net, 1, delta.max(1), seed)
                .unwrap()
                .buckets
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    #[should_panic(expected = "buckets insufficient")]
    fn too_few_buckets_panics() {
        let g = generators::complete(10);
        let mut net = Network::new(&g, Bandwidth::Local);
        let _ = sequential_arbdefective(&mut net, None, 0, 2);
    }
}
