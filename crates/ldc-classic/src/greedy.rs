//! Sequential greedy reference solvers (centralized baselines).

use ldc_graph::{Graph, NodeId};

/// Sequentially solve a `(degree+1)`-list coloring instance: visit nodes in
/// id order and give each the first list color unused by colored neighbors.
///
/// Succeeds whenever `|list(v)| ≥ deg(v) + 1` (the classic greedy
/// argument); returns `None` if some node's list is exhausted.
pub fn greedy_list_coloring(g: &Graph, lists: &[Vec<u64>]) -> Option<Vec<u64>> {
    assert_eq!(lists.len(), g.num_nodes());
    let mut colors: Vec<Option<u64>> = vec![None; g.num_nodes()];
    for v in g.nodes() {
        let taken: std::collections::HashSet<u64> = g
            .neighbors(v)
            .iter()
            .filter_map(|&u| colors[u as usize])
            .collect();
        let pick = lists[v as usize]
            .iter()
            .copied()
            .find(|c| !taken.contains(c))?;
        colors[v as usize] = Some(pick);
    }
    Some(colors.into_iter().map(|c| c.expect("all set")).collect())
}

/// Brute-force exact solver for *tiny* list-coloring instances with
/// per-color defect bounds (used to certify tightness results): find an
/// assignment `φ(v) ∈ lists[v]` such that every node `v` has at most
/// `defect(v, φ(v))` same-colored neighbors, or prove none exists.
pub fn brute_force_list_defective(
    g: &Graph,
    lists: &[Vec<u64>],
    defect: &dyn Fn(NodeId, u64) -> u64,
) -> Option<Vec<u64>> {
    let n = g.num_nodes();
    assert!(n <= 16, "brute force is for tiny instances");
    let mut assignment: Vec<u64> = vec![0; n];

    fn ok_so_far(
        g: &Graph,
        assignment: &[u64],
        upto: usize,
        defect: &dyn Fn(NodeId, u64) -> u64,
    ) -> bool {
        // Check defect constraints restricted to nodes < upto; a partial
        // assignment that already violates some node's budget cannot be
        // completed (defects only grow).
        for v in 0..upto {
            let c = assignment[v];
            let same = g
                .neighbors(v as NodeId)
                .iter()
                .filter(|&&u| (u as usize) < upto && assignment[u as usize] == c)
                .count() as u64;
            if same > defect(v as NodeId, c) {
                return false;
            }
        }
        true
    }

    fn rec(
        g: &Graph,
        lists: &[Vec<u64>],
        assignment: &mut Vec<u64>,
        v: usize,
        defect: &dyn Fn(NodeId, u64) -> u64,
    ) -> bool {
        if v == g.num_nodes() {
            return true;
        }
        for &c in &lists[v] {
            assignment[v] = c;
            if ok_so_far(g, assignment, v + 1, defect) && rec(g, lists, assignment, v + 1, defect) {
                return true;
            }
        }
        false
    }

    if rec(g, lists, &mut assignment, 0, defect) {
        Some(assignment)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldc_graph::generators;

    #[test]
    fn greedy_solves_degree_plus_one() {
        let g = generators::gnp(80, 0.1, 5);
        let lists: Vec<Vec<u64>> = g
            .nodes()
            .map(|v| (0..=g.degree(v) as u64).collect())
            .collect();
        let colors = greedy_list_coloring(&g, &lists).unwrap();
        for (_, u, v) in g.edges() {
            assert_ne!(colors[u as usize], colors[v as usize]);
        }
        for v in g.nodes() {
            assert!(lists[v as usize].contains(&colors[v as usize]));
        }
    }

    #[test]
    fn greedy_fails_gracefully_when_lists_too_short() {
        let g = generators::complete(4);
        let lists: Vec<Vec<u64>> = (0..4).map(|_| vec![0, 1]).collect();
        assert!(greedy_list_coloring(&g, &lists).is_none());
    }

    #[test]
    fn brute_force_agrees_with_greedy_on_feasible() {
        let g = generators::complete(4);
        let lists: Vec<Vec<u64>> = (0..4).map(|_| vec![0, 1, 2, 3]).collect();
        assert!(brute_force_list_defective(&g, &lists, &|_, _| 0).is_some());
    }

    #[test]
    fn brute_force_detects_infeasible_clique() {
        // K4, 2 colors, defect 0: impossible (needs 4 colors).
        let g = generators::complete(4);
        let lists: Vec<Vec<u64>> = (0..4).map(|_| vec![0, 1]).collect();
        assert!(brute_force_list_defective(&g, &lists, &|_, _| 0).is_none());
        // Defect 1 makes it feasible: two nodes per color class.
        assert!(brute_force_list_defective(&g, &lists, &|_, _| 1).is_some());
    }
}
