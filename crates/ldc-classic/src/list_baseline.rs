//! LOCAL `(degree+1)`-list coloring baseline with full-list messages.
//!
//! This is the message regime the paper's CONGEST algorithm (Theorem 1.4)
//! improves on: like the algorithms of \[FHK16, BEG18, MT20\], every node
//! must learn its neighbors' color lists, so `Ω(Δ·log|𝒞|)` bits cross each
//! edge. The round schedule here is the simple deterministic local-maximum
//! greedy (nodes that hold the largest id among uncolored neighbors pick
//! the first free list color); rounds are measured empirically in E6 while
//! the *message size* column is the quantity of interest.

use ldc_graph::{Graph, NodeId};
use ldc_sim::message::Costed;
use ldc_sim::{bits_for_value, MessageSize, Network, SimError};

#[derive(Clone)]
struct NodeState {
    list: Vec<u64>,
    color: Option<u64>,
    /// ids of uncolored neighbors (port-indexed snapshot).
    uncolored_neighbor_ids: Vec<Option<NodeId>>,
}

#[derive(Clone)]
enum Payload {
    /// Uncolored: full remaining list (the expensive message).
    List(Vec<u64>),
    /// Colored, announcing the final color.
    Color(u64),
}

#[derive(Clone)]
struct Msg {
    id: NodeId,
    payload: Payload,
    /// Size of the color space, for canonical list encoding.
    space: u64,
}

impl MessageSize for Msg {
    fn bits(&self) -> u64 {
        let id_bits = bits_for_value(u64::from(self.id)).max(1);
        match &self.payload {
            // Canonical cost: min(|𝒞|, Λ·⌈log|𝒞|⌉) bits for a list.
            Payload::List(l) => {
                let per_color = bits_for_value(self.space.saturating_sub(1)).max(1);
                id_bits + (l.len() as u64 * per_color).min(self.space)
            }
            Payload::Color(_) => id_bits + bits_for_value(self.space.saturating_sub(1)).max(1),
        }
    }
}

/// Deterministic LOCAL `(degree+1)`-list coloring with full-list messages.
///
/// `space` is the color-space size `|𝒞|` (all list entries must be below
/// it); `lists[v]` needs more than `deg(v)` colors.
pub fn local_greedy_list_coloring(
    net: &mut Network<'_>,
    lists: &[Vec<u64>],
    space: u64,
) -> Result<Vec<u64>, SimError> {
    let g: &Graph = net.graph();
    assert_eq!(lists.len(), g.num_nodes());
    for v in g.nodes() {
        assert!(
            lists[v as usize].len() > g.degree(v),
            "list of node {v} too short"
        );
        assert!(
            lists[v as usize].iter().all(|&c| c < space),
            "colors must lie in 0..space"
        );
    }
    let mut states: Vec<NodeState> = g
        .nodes()
        .map(|v| NodeState {
            list: lists[v as usize].clone(),
            color: None,
            uncolored_neighbor_ids: g.neighbors(v).iter().map(|&u| Some(u)).collect(),
        })
        .collect();

    let mut remaining = g.num_nodes();
    while remaining > 0 {
        net.broadcast_exchange(
            &mut states,
            |v, s| {
                Some(match s.color {
                    None => Msg {
                        id: v,
                        payload: Payload::List(s.list.clone()),
                        space,
                    },
                    Some(c) => Msg {
                        id: v,
                        payload: Payload::Color(c),
                        space,
                    },
                })
            },
            |v, s, inbox| {
                if s.color.is_some() {
                    return;
                }
                let mut local_max = true;
                for (p, m) in inbox.iter() {
                    match &m.payload {
                        Payload::List(_) => {
                            if m.id > v {
                                local_max = false;
                            }
                        }
                        Payload::Color(c) => {
                            s.list.retain(|x| x != c);
                            s.uncolored_neighbor_ids[p] = None;
                        }
                    }
                }
                if local_max {
                    s.color = Some(*s.list.first().expect("list longer than degree"));
                }
            },
        )?;
        remaining = states.iter().filter(|s| s.color.is_none()).count();
    }
    Ok(states.into_iter().map(|s| s.color.expect("done")).collect())
}

// Re-export kept intentionally small; `Costed` is available for callers
// composing their own accounting.
#[allow(dead_code)]
fn _costed_is_reexported(c: Costed<u8>) -> u64 {
    c.bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldc_graph::generators;
    use ldc_sim::Bandwidth;

    fn degree_lists(g: &Graph, space: u64) -> Vec<Vec<u64>> {
        // Give node v the colors {v mod k, ...} spread over the space so
        // lists differ between nodes.
        g.nodes()
            .map(|v| {
                let need = g.degree(v) as u64 + 1;
                (0..need)
                    .map(|i| (u64::from(v) + i * 7) % space)
                    .collect::<Vec<u64>>()
            })
            .map(|mut l| {
                l.sort_unstable();
                l.dedup();
                l
            })
            .collect()
    }

    #[test]
    fn colors_properly_from_lists() {
        let g = generators::gnp(150, 0.04, 4);
        let space = 4 * (g.max_degree() as u64 + 1);
        let mut lists = degree_lists(&g, space);
        // Ensure length > degree after dedup: top up deterministically.
        for v in g.nodes() {
            let need = g.degree(v) + 1;
            let mut c = 0u64;
            while lists[v as usize].len() < need {
                if !lists[v as usize].contains(&c) {
                    lists[v as usize].push(c);
                }
                c += 1;
            }
        }
        let mut net = Network::new(&g, Bandwidth::Local);
        let colors = local_greedy_list_coloring(&mut net, &lists, space).unwrap();
        for (_, u, v) in g.edges() {
            assert_ne!(colors[u as usize], colors[v as usize]);
        }
        for v in g.nodes() {
            assert!(lists[v as usize].contains(&colors[v as usize]));
        }
    }

    #[test]
    fn messages_scale_with_list_length() {
        let g = generators::complete(20);
        let space = 1u64 << 12;
        let lists: Vec<Vec<u64>> = (0..20).map(|_| (0..20).collect()).collect();
        let mut net = Network::new(&g, Bandwidth::Local);
        local_greedy_list_coloring(&mut net, &lists, space).unwrap();
        // A full list message costs ≥ 20 colors × 12 bits (below the
        // |𝒞| = 4096 bitmap crossover).
        assert!(net.metrics().max_message_bits() >= 240);
    }

    #[test]
    fn congest_budget_is_violated_by_design_for_large_lists() {
        let g = generators::complete(24);
        let space = 1 << 10;
        let lists: Vec<Vec<u64>> = (0..24)
            .map(|v| (0..24).map(|i| (v + i * 25) % space).collect())
            .collect();
        let mut net = Network::new(
            &g,
            Bandwidth::Congest {
                bits_per_message: 16,
            },
        );
        let err = local_greedy_list_coloring(&mut net, &lists, space);
        assert!(err.is_err(), "full-list messages must blow a 16-bit budget");
    }
}
