//! Randomized trial-coloring baseline (Luby/Johansson style).
//!
//! Every uncolored node proposes a uniformly random color from its free
//! palette and keeps it unless a neighbor proposed or holds the same color
//! (ties broken toward the smaller id so progress is guaranteed). For the
//! `(degree+1)` palette this terminates in `O(log n)` rounds w.h.p.; it is
//! the randomized baseline the paper's *deterministic* algorithms are
//! measured against in E6.

use ldc_graph::{Graph, NodeId};
use ldc_rand::Rng;
use ldc_sim::{Network, SimError};

#[derive(Clone)]
struct NodeState {
    rng: Rng,
    palette: Vec<u64>,
    proposal: Option<u64>,
    color: Option<u64>,
}

/// Messages carry `(id, value, committed?)`.
#[derive(Clone)]
struct Msg {
    id: NodeId,
    value: u64,
    committed: bool,
}

impl ldc_sim::MessageSize for Msg {
    fn bits(&self) -> u64 {
        use ldc_sim::bits_for_value;
        bits_for_value(u64::from(self.id)).max(1) + bits_for_value(self.value).max(1) + 1
    }
}

/// Randomized `(degree+1)`-list coloring. `lists[v]` must have at least
/// `deg(v) + 1` colors. Returns the colors and the number of rounds used.
pub fn luby_list_coloring(
    net: &mut Network<'_>,
    lists: &[Vec<u64>],
    seed: u64,
) -> Result<Vec<u64>, SimError> {
    let g: &Graph = net.graph();
    assert_eq!(lists.len(), g.num_nodes());
    for v in g.nodes() {
        assert!(
            lists[v as usize].len() > g.degree(v),
            "node {v} needs a list longer than its degree"
        );
    }
    let mut states: Vec<NodeState> = g
        .nodes()
        .map(|v| NodeState {
            rng: Rng::seed_from_u64(seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(u64::from(v) + 1))),
            palette: lists[v as usize].clone(),
            proposal: None,
            color: None,
        })
        .collect();

    let mut remaining = g.num_nodes();
    // Safety valve: expected O(log n); 64·(log n + 4) rounds is astronomical
    // headroom before we declare a bug.
    let max_rounds = 64 * (usize::BITS as usize + 4);
    let mut iters = 0usize;
    while remaining > 0 {
        iters += 1;
        assert!(
            iters <= max_rounds,
            "luby did not converge; {remaining} uncolored"
        );
        // Propose phase (draw happens locally before composing).
        for s in states.iter_mut() {
            if s.color.is_none() {
                let idx = s.rng.gen_range(0..s.palette.len());
                s.proposal = Some(s.palette[idx]);
            } else {
                s.proposal = None;
            }
        }
        net.broadcast_exchange(
            &mut states,
            |v, s| {
                s.proposal
                    .map(|p| Msg {
                        id: v,
                        value: p,
                        committed: false,
                    })
                    .or_else(|| {
                        s.color.map(|c| Msg {
                            id: v,
                            value: c,
                            committed: true,
                        })
                    })
            },
            |v, s, inbox| {
                let Some(my) = s.proposal else { return };
                let mut keep = true;
                for (_, m) in inbox.iter() {
                    if m.value == my && (m.committed || m.id < v) {
                        keep = false;
                        break;
                    }
                }
                if keep {
                    s.color = Some(my);
                }
                // Shrink palette by colors now held by neighbors.
                let held: Vec<u64> = inbox
                    .iter()
                    .filter(|(_, m)| m.committed)
                    .map(|(_, m)| m.value)
                    .collect();
                s.palette.retain(|c| !held.contains(c));
                s.proposal = None;
            },
        )?;
        remaining = states.iter().filter(|s| s.color.is_none()).count();
    }
    Ok(states
        .into_iter()
        .map(|s| s.color.expect("all colored"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldc_graph::generators;
    use ldc_sim::Bandwidth;

    fn degree_lists(g: &Graph) -> Vec<Vec<u64>> {
        g.nodes()
            .map(|v| (0..=g.degree(v) as u64).collect())
            .collect()
    }

    #[test]
    fn colors_gnp_properly() {
        let g = generators::gnp(200, 0.05, 1);
        let lists = degree_lists(&g);
        let mut net = Network::new(&g, Bandwidth::Local);
        let colors = luby_list_coloring(&mut net, &lists, 99).unwrap();
        for (_, u, v) in g.edges() {
            assert_ne!(colors[u as usize], colors[v as usize]);
        }
        for v in g.nodes() {
            assert!(lists[v as usize].contains(&colors[v as usize]));
        }
    }

    #[test]
    fn converges_quickly_on_clique() {
        let g = generators::complete(32);
        let lists = degree_lists(&g);
        let mut net = Network::new(&g, Bandwidth::Local);
        luby_list_coloring(&mut net, &lists, 7).unwrap();
        assert!(net.rounds() < 200, "rounds = {}", net.rounds());
    }

    #[test]
    fn respects_custom_lists() {
        let g = generators::ring(30);
        let lists: Vec<Vec<u64>> = (0..30).map(|v| vec![10 + v, 50 + v, 90 + v]).collect();
        let mut net = Network::new(&g, Bandwidth::Local);
        let colors = luby_list_coloring(&mut net, &lists, 3).unwrap();
        for v in g.nodes() {
            assert!(lists[v as usize].contains(&colors[v as usize]));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::gnp(100, 0.08, 2);
        let lists = degree_lists(&g);
        let run = |seed| {
            let mut net = Network::new(&g, Bandwidth::Local);
            luby_list_coloring(&mut net, &lists, seed).unwrap()
        };
        assert_eq!(run(5), run(5));
    }
}
