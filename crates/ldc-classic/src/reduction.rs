//! Standard color-class elimination: reduce a proper `m`-coloring to a
//! proper `(Δ+1)`-coloring in `m − (Δ+1)` rounds (one class per round).
//!
//! Combined with Linial's algorithm this is the classic
//! `O(Δ² + log* n)`-round `(Δ+1)`-coloring \[Lin87, GPS88\] that serves as
//! the simplest deterministic baseline in experiment E6.

use ldc_graph::ProperColoring;
use ldc_sim::{Network, SimError};

#[derive(Clone)]
struct NodeState {
    color: u64,
    neighbor_colors: Vec<u64>,
}

/// Reduce the proper coloring `initial` to a `(Δ+1)`-coloring.
///
/// One round per eliminated color class: the nodes of the currently largest
/// class form an independent set and simultaneously recolor to their
/// smallest free color in `0..=Δ`.
pub fn reduce_to_delta_plus_one(
    net: &mut Network<'_>,
    initial: &ProperColoring,
) -> Result<ProperColoring, SimError> {
    let g = net.graph();
    let delta = g.max_degree() as u64;
    let m = initial.palette_size();
    let mut states: Vec<NodeState> = g
        .nodes()
        .map(|v| NodeState {
            color: initial.color(v),
            neighbor_colors: Vec::new(),
        })
        .collect();

    // One initial exchange so everyone knows its neighbors' colors.
    net.broadcast_exchange(
        &mut states,
        |_, s| Some(s.color),
        |_, s, inbox| {
            s.neighbor_colors = vec![0; inbox.ports()];
            for (p, &c) in inbox.iter() {
                s.neighbor_colors[p] = c;
            }
        },
    )?;

    let mut current = m;
    while current > delta + 1 {
        let class = current - 1;
        net.broadcast_exchange(
            &mut states,
            |_, s| {
                if s.color == class {
                    let free = (0..=delta)
                        .find(|c| !s.neighbor_colors.contains(c))
                        .expect("≤ Δ neighbors leave a free color in 0..=Δ");
                    Some(free)
                } else {
                    None
                }
            },
            |_, s, inbox| {
                if s.color == class {
                    // Recompute deterministically; identical to the sent value.
                    let free = (0..=delta)
                        .find(|c| !s.neighbor_colors.contains(c))
                        .expect("≤ Δ neighbors leave a free color in 0..=Δ");
                    s.color = free;
                }
                for (p, &c) in inbox.iter() {
                    s.neighbor_colors[p] = c;
                }
            },
        )?;
        current -= 1;
    }

    let colors = states.into_iter().map(|s| s.color).collect();
    Ok(ProperColoring::new(g, colors, delta + 1).expect("reduction keeps coloring proper"))
}

/// Kuhn–Wattenhofer divide-and-conquer color reduction \[KW06\]: reduce a
/// proper `m`-coloring to `(Δ+1)` colors in `O(Δ·log(m/Δ))` rounds (the
/// paper's footnote-2 baseline, vs `O(m)` for plain class elimination).
///
/// Bottom-up over the palette: nodes are grouped by their color's
/// `2(Δ+1)`-wide block; each group eliminates its excess classes in
/// parallel (classes are independent sets *within* a group, and different
/// groups never share current colors); then sibling groups merge — the
/// right sibling shifts its colors up by `Δ+1` — and eliminate again.
pub fn kw_reduce_to_delta_plus_one(
    net: &mut Network<'_>,
    initial: &ProperColoring,
) -> Result<ProperColoring, SimError> {
    let g = net.graph();
    let delta = g.max_degree() as u64;
    let target = delta + 1;
    let block = 2 * target;

    #[derive(Clone)]
    struct S {
        /// Current color, in `0..block` *relative* to the group base.
        color: u64,
        /// Group id (palette block); halves every level.
        group: u64,
        neighbor: Vec<Option<(u64, u64)>>, // (group, color) per port
    }
    let m0 = initial.palette_size();
    let mut states: Vec<S> = g
        .nodes()
        .map(|v| {
            let c = initial.color(v);
            S {
                color: c % block,
                group: c / block,
                neighbor: vec![None; g.degree(v)],
            }
        })
        .collect();
    let mut groups = m0.div_ceil(block);

    // One elimination pass: every group shrinks its palette from `width`
    // down to `target`, one class per round (a class is independent within
    // its group).
    let eliminate =
        |net: &mut Network<'_>, states: &mut Vec<S>, width: u64| -> Result<(), SimError> {
            // Refresh each node's view of neighbor (group, color).
            net.broadcast_exchange(
                states,
                |_, s| Some((s.group, s.color)),
                |_, s, inbox| {
                    for (p, &gc) in inbox.iter() {
                        s.neighbor[p] = Some(gc);
                    }
                },
            )?;
            let mut current = width;
            while current > target {
                let class = current - 1;
                net.broadcast_exchange(
                    states,
                    |_, s| {
                        if s.color == class {
                            let free = (0..target)
                                .find(|&c| {
                                    s.neighbor
                                        .iter()
                                        .flatten()
                                        .all(|&(ng, nc)| ng != s.group || nc != c)
                                })
                                .expect("≤ Δ same-group neighbors leave a free color");
                            Some((s.group, free))
                        } else {
                            None
                        }
                    },
                    |_, s, inbox| {
                        if s.color == class {
                            let free = (0..target)
                                .find(|&c| {
                                    s.neighbor
                                        .iter()
                                        .flatten()
                                        .all(|&(ng, nc)| ng != s.group || nc != c)
                                })
                                .expect("≤ Δ same-group neighbors leave a free color");
                            s.color = free;
                        }
                        for (p, &gc) in inbox.iter() {
                            s.neighbor[p] = Some(gc);
                        }
                    },
                )?;
                current -= 1;
            }
            Ok(())
        };

    // Level 0: shrink every block from `block` to `target` colors.
    eliminate(net, &mut states, block)?;
    // Merge levels: sibling groups (2i, 2i+1) fuse; the odd sibling shifts
    // its colors up by `target`, then the fused group eliminates again.
    while groups > 1 {
        for s in states.iter_mut() {
            if s.group % 2 == 1 {
                s.color += target;
            }
            s.group /= 2;
        }
        eliminate(net, &mut states, 2 * target)?;
        groups = groups.div_ceil(2);
    }

    let colors: Vec<u64> = states.iter().map(|s| s.color).collect();
    Ok(ProperColoring::new(g, colors, target).expect("KW reduction keeps coloring proper"))
}

/// CONGEST-compatible `(degree+1)`-*list* coloring by iterating the color
/// classes of a proper `m`-coloring: in round `t`, the uncolored nodes of
/// class `t` (an independent set) pick their first list color not yet taken
/// by a neighbor and announce it (`O(log|𝒞|)`-bit messages). `m` rounds;
/// with a Linial initialization this is the classic `O(Δ² + log* n)`
/// deterministic baseline that experiment E6 compares Theorem 1.4 against.
pub fn class_iteration_list_coloring(
    net: &mut Network<'_>,
    initial: &ProperColoring,
    lists: &[Vec<u64>],
) -> Result<Vec<u64>, SimError> {
    let g = net.graph();
    assert_eq!(lists.len(), g.num_nodes());
    for v in g.nodes() {
        assert!(
            lists[v as usize].len() > g.degree(v),
            "list of node {v} too short"
        );
    }

    #[derive(Clone)]
    struct S {
        class: u64,
        list: Vec<u64>,
        color: Option<u64>,
    }
    let mut states: Vec<S> = g
        .nodes()
        .map(|v| S {
            class: initial.color(v),
            list: lists[v as usize].clone(),
            color: None,
        })
        .collect();

    for t in 0..initial.palette_size() {
        net.broadcast_exchange(
            &mut states,
            |_, s| (s.class == t).then(|| *s.list.first().expect("list outlasts taken colors")),
            |_, s, inbox| {
                if s.class == t {
                    s.color = Some(*s.list.first().expect("list outlasts taken colors"));
                }
                for (_, &c) in inbox.iter() {
                    s.list.retain(|&x| x != c);
                }
            },
        )?;
    }
    Ok(states
        .into_iter()
        .map(|s| s.color.expect("every class processed"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linial::linial_coloring;
    use ldc_graph::generators;
    use ldc_sim::Bandwidth;

    #[test]
    fn reduces_to_delta_plus_one() {
        let g = generators::gnp(120, 0.08, 3);
        let mut net = Network::new(&g, Bandwidth::Local);
        let lin = linial_coloring(&mut net, None).unwrap();
        let reduced = reduce_to_delta_plus_one(&mut net, &lin).unwrap();
        assert!(reduced.validate(&g).is_ok());
        assert_eq!(reduced.palette_size(), g.max_degree() as u64 + 1);
    }

    #[test]
    fn round_count_is_m_minus_palette() {
        let g = generators::ring(64);
        let mut net = Network::new(&g, Bandwidth::Local);
        let lin = linial_coloring(&mut net, None).unwrap();
        let before = net.rounds();
        let m = lin.palette_size();
        let _ = reduce_to_delta_plus_one(&mut net, &lin).unwrap();
        let used = net.rounds() - before;
        assert_eq!(used as u64, 1 + (m - 3)); // 1 setup + (m - (Δ+1)) classes
    }

    #[test]
    fn kw_reduction_reaches_delta_plus_one() {
        let g = generators::gnp(200, 0.05, 6);
        let mut net = Network::new(&g, Bandwidth::congest_log(200, 8));
        let lin = linial_coloring(&mut net, None).unwrap();
        let reduced = kw_reduce_to_delta_plus_one(&mut net, &lin).unwrap();
        assert!(reduced.validate(&g).is_ok());
        assert_eq!(reduced.palette_size(), g.max_degree() as u64 + 1);
    }

    #[test]
    fn kw_beats_plain_elimination_on_large_palettes() {
        // From an n-coloring with n ≫ Δ², KW uses O(Δ·log(n/Δ)) rounds vs
        // the plain eliminator's Θ(n).
        let g = generators::random_regular(4096, 6, 3);
        let id = ldc_graph::ProperColoring::by_id(&g);

        let mut net_kw = Network::new(&g, Bandwidth::Local);
        let kw = kw_reduce_to_delta_plus_one(&mut net_kw, &id).unwrap();
        assert!(kw.validate(&g).is_ok());

        let mut net_plain = Network::new(&g, Bandwidth::Local);
        let plain = reduce_to_delta_plus_one(&mut net_plain, &id).unwrap();
        assert!(plain.validate(&g).is_ok());

        assert!(
            net_kw.rounds() * 4 < net_plain.rounds(),
            "KW {} rounds vs plain {}",
            net_kw.rounds(),
            net_plain.rounds()
        );
    }

    #[test]
    fn kw_handles_small_palettes() {
        let g = generators::ring(12);
        let greedy = ldc_graph::coloring::greedy_by_id(&g);
        let mut net = Network::new(&g, Bandwidth::Local);
        let r = kw_reduce_to_delta_plus_one(&mut net, &greedy).unwrap();
        assert!(r.validate(&g).is_ok());
        assert_eq!(r.palette_size(), 3);
    }

    #[test]
    fn class_iteration_solves_lists_in_congest() {
        let g = generators::gnp(120, 0.07, 4);
        let mut net = Network::new(&g, Bandwidth::congest_log(120, 4));
        let lin = linial_coloring(&mut net, None).unwrap();
        let lists: Vec<Vec<u64>> = g
            .nodes()
            .map(|v| {
                (0..=g.degree(v) as u64)
                    .map(|i| i * 3 + u64::from(v % 2))
                    .collect()
            })
            .collect();
        let colors = class_iteration_list_coloring(&mut net, &lin, &lists).unwrap();
        for (_, u, v) in g.edges() {
            assert_ne!(colors[u as usize], colors[v as usize]);
        }
        for v in g.nodes() {
            assert!(lists[v as usize].contains(&colors[v as usize]));
        }
        // Rounds ≈ log* n + m (the Θ(Δ²) baseline cost).
        assert!(net.rounds() as u64 >= lin.palette_size());
    }

    #[test]
    fn already_small_palette_is_a_noop_after_setup() {
        let g = generators::complete(5); // Δ+1 = 5 = n
        let mut net = Network::new(&g, Bandwidth::Local);
        let id = ldc_graph::ProperColoring::by_id(&g);
        let reduced = reduce_to_delta_plus_one(&mut net, &id).unwrap();
        assert!(reduced.validate(&g).is_ok());
        assert_eq!(net.rounds(), 1);
    }
}
