//! End-to-end tests for `ldcd` against a real Unix socket: protocol
//! resilience, concurrent-client correctness, deterministic
//! queue-full behaviour, graceful drain, and the headline promise —
//! rows byte-identical to `ldc batch` on the shared `ci/fleet_e17.json`
//! fixture.

#![cfg(unix)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

use ldc_batch::{parse_spec_file, Fleet, JobSpec};
use ldc_daemon::client::Client;
use ldc_daemon::loadgen;
use ldc_daemon::proto::{Request, Response};
use ldc_daemon::server::{serve, ServerConfig, ServerHandle};
use ldc_daemon::signal;

/// A unique socket path per test, in the build's temp dir.
fn socket_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("ldcd-test-{}-{tag}-{seq}.sock", std::process::id()))
}

fn start(tag: &str, tune: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut cfg = ServerConfig::new(socket_path(tag));
    tune(&mut cfg);
    serve(cfg).expect("daemon binds")
}

fn quick_job() -> JobSpec {
    parse_spec_file(r#"[{"graph":{"family":"ring","n":32},"algorithm":"congest"}]"#)
        .unwrap()
        .remove(0)
}

/// The heavyweight job shape from `ci/fleet_e17.json`: long color lists
/// keep one solve busy for long enough that pipelined admissions are
/// never racing its completion.
fn slow_job() -> JobSpec {
    parse_spec_file(
        r#"[{"graph": {"family": "regular", "n": 80, "d": 6, "seed": 5},
             "algorithm": "oldc",
             "lists": {"kind": "uniform", "space": 8192, "len": 3000, "defect": 3, "salt": 0},
             "seed": 1}]"#,
    )
    .unwrap()
    .remove(0)
}

fn row_of(resp: Response) -> String {
    match resp {
        Response::Result { row, .. } => row,
        other => panic!("expected a result, got {other:?}"),
    }
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    let server = start("malformed", |_| {});
    let mut c = Client::connect(server.socket_path()).unwrap();

    let cases: [(&[u8], &str); 5] = [
        (b"\xc3\x28", "bad_frame"),
        (b"{\"v\":1,", "bad_frame"),
        (b"{\"type\":\"ping\"}", "bad_version"),
        (b"{\"v\":9,\"type\":\"ping\"}", "bad_version"),
        (b"{\"v\":1,\"type\":\"levitate\"}", "unknown_type"),
    ];
    for (payload, want) in cases {
        c.send_raw(payload).unwrap();
        match c.recv().unwrap().expect("typed error, not a hangup") {
            Response::Error { code, .. } => assert_eq!(code, want),
            other => panic!("expected error {want}, got {other:?}"),
        }
    }
    // A bad solve spec is also typed — and the connection still works
    // afterwards: the same stream pings and solves successfully.
    c.send_raw(b"{\"v\":1,\"type\":\"solve\",\"id\":1,\"job\":{\"algorithm\":\"warp\"}}")
        .unwrap();
    match c.recv().unwrap().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, "bad_request"),
        other => panic!("expected bad_request, got {other:?}"),
    }
    assert_eq!(c.ping().unwrap(), Response::Pong);
    let row = row_of(c.solve(0, &quick_job()).unwrap());
    assert!(row.starts_with("{\"job\":0,"), "row: {row}");

    server.drain();
    server.join().unwrap();
}

#[test]
fn truncated_frame_mid_payload_closes_only_that_connection() {
    let server = start("truncated", |_| {});

    // Announce 100 bytes, send 3, hang up: the server must not wedge.
    {
        let mut c = Client::connect(server.socket_path()).unwrap();
        c.send_raw(b"probe").unwrap(); // keep the handshake warm
        let _ = c.recv().unwrap(); // typed bad_frame for "probe"
    }
    {
        use std::io::Write;
        use std::os::unix::net::UnixStream;
        let mut raw = UnixStream::connect(server.socket_path()).unwrap();
        raw.write_all(&100u32.to_be_bytes()).unwrap();
        raw.write_all(b"abc").unwrap();
        drop(raw);
    }
    // A fresh connection is unaffected.
    let mut c = Client::connect(server.socket_path()).unwrap();
    assert_eq!(c.ping().unwrap(), Response::Pong);

    server.drain();
    server.join().unwrap();
}

#[test]
fn concurrent_clients_get_their_own_answers() {
    let server = start("concurrent", |cfg| {
        cfg.workers = 4;
        cfg.queue_cap = 64;
    });
    let path = server.socket_path().to_path_buf();

    let handles: Vec<_> = (0..6u64)
        .map(|client_no| {
            let path = path.clone();
            thread::spawn(move || {
                let mut c = Client::connect(&path).unwrap();
                for i in 0..5u64 {
                    let id = client_no * 100 + i;
                    match c.solve(id, &quick_job()).unwrap() {
                        Response::Result { id: got, row } => {
                            assert_eq!(got, id, "answers stay on their connection");
                            assert!(
                                row.starts_with(&format!("{{\"job\":{id},")),
                                "row index echoes the request id: {row}"
                            );
                        }
                        Response::Busy { .. } => panic!("queue sized to never reject"),
                        other => panic!("unexpected {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    server.drain();
    server.join().unwrap();
}

#[test]
fn queue_full_is_busy_deterministically_and_admitted_jobs_still_answer() {
    // Window = workers + queue_cap = 2: with a slow job occupying the
    // worker and one queued, the third pipelined solve is always Busy.
    let server = start("busy", |cfg| {
        cfg.workers = 1;
        cfg.queue_cap = 1;
        cfg.retry_after_ms = 17;
    });
    let (mut tx, mut rx) = Client::connect(server.socket_path())
        .unwrap()
        .split()
        .unwrap();

    let slow = slow_job();
    for id in 0..3u64 {
        tx.send(&Request::Solve {
            id,
            job: Box::new(slow.clone()),
        })
        .unwrap();
    }
    // The busy verdict is delivered by the reader thread immediately,
    // before either admitted job completes.
    let first = rx.recv().unwrap().unwrap();
    match first {
        Response::Busy { retry_after_ms } => assert_eq!(retry_after_ms, 17),
        other => panic!("third solve must be rejected first, got {other:?}"),
    }
    // Both admitted jobs complete, in admission order, with equal rows
    // up to the job index (same spec, same seed).
    let mut rows = Vec::new();
    for want_id in 0..2u64 {
        match rx.recv().unwrap().unwrap() {
            Response::Result { id, row } => {
                assert_eq!(id, want_id);
                rows.push(row);
            }
            other => panic!("expected result {want_id}, got {other:?}"),
        }
    }
    assert_eq!(
        rows[0].replace("\"job\":0,", "\"job\":1,"),
        rows[1],
        "identical spec ⇒ identical row modulo the index"
    );

    server.drain();
    server.join().unwrap();
}

#[test]
fn drain_completes_in_flight_jobs_then_closes() {
    let server = start("drain", |cfg| {
        cfg.workers = 1;
        cfg.queue_cap = 8;
    });
    let (mut tx, mut rx) = Client::connect(server.socket_path())
        .unwrap()
        .split()
        .unwrap();

    // Three slow jobs admitted, then drain while they are in flight.
    for id in 0..3u64 {
        tx.send(&Request::Solve {
            id,
            job: Box::new(slow_job()),
        })
        .unwrap();
    }
    thread::sleep(Duration::from_millis(30)); // let the first one start
    server.drain();

    // A post-drain solve on the same connection is refused with the
    // typed code, not dropped.
    tx.send(&Request::Solve {
        id: 99,
        job: Box::new(quick_job()),
    })
    .unwrap();

    let mut results = Vec::new();
    let mut draining_rejects = 0;
    while let Some(resp) = rx.recv().unwrap() {
        match resp {
            Response::Result { id, .. } => results.push(id),
            Response::Error { code, .. } if code == "draining" => draining_rejects += 1,
            other => panic!("unexpected during drain: {other:?}"),
        }
    }
    // rx.recv() returned None: the server closed after delivering
    // everything it admitted.
    results.sort_unstable();
    assert_eq!(results, vec![0, 1, 2], "every admitted job was answered");
    assert_eq!(
        draining_rejects, 1,
        "the post-drain solve got the typed refusal"
    );

    let path = server.socket_path().to_path_buf();
    server.join().unwrap();
    assert!(!path.exists(), "socket file removed on join");
}

#[test]
fn sigterm_flag_triggers_the_same_drain_path() {
    signal::clear_termination();
    let server = start("sigterm", |cfg| {
        cfg.heed_signals = true;
    });
    let mut c = Client::connect(server.socket_path()).unwrap();
    assert_eq!(c.ping().unwrap(), Response::Pong);
    assert!(!server.is_draining());

    // The handler's exact effect, minus process-global signal delivery
    // (other tests in this binary share the process).
    signal::raise_term();
    assert!(server.is_draining(), "signal flag observed as a drain");
    server.join().unwrap();
    signal::clear_termination();

    // And the real handler install path is exercised too.
    signal::install();
}

#[test]
fn shutdown_request_drains_and_acknowledges() {
    let server = start("shutdown", |_| {});
    let mut c = Client::connect(server.socket_path()).unwrap();
    assert_eq!(c.shutdown().unwrap(), Response::Pong);
    assert!(server.is_draining());
    server.join().unwrap();
}

#[test]
fn stats_snapshot_is_deterministic_and_counts_requests() {
    let server = start("stats", |_| {});
    let mut c = Client::connect(server.socket_path()).unwrap();
    let _ = row_of(c.solve(0, &quick_job()).unwrap());
    let _ = row_of(c.solve(1, &quick_job()).unwrap());

    let det = match c.stats().unwrap() {
        Response::Stats { det } => det,
        other => panic!("expected stats, got {other:?}"),
    };
    assert!(det.contains("\"daemon.solved\":2"), "det: {det}");
    assert!(det.contains("\"daemon.graph_cache_hits\":1"), "det: {det}");
    assert!(
        det.contains("\"daemon.graph_cache_misses\":1"),
        "det: {det}"
    );
    assert!(!det.contains("wall"), "no wall-clock in the det snapshot");

    // Same requests ⇒ same snapshot, on a fresh daemon.
    let server2 = start("stats2", |_| {});
    let mut c2 = Client::connect(server2.socket_path()).unwrap();
    let _ = row_of(c2.solve(0, &quick_job()).unwrap());
    let _ = row_of(c2.solve(1, &quick_job()).unwrap());
    let det2 = match c2.stats().unwrap() {
        Response::Stats { det } => det,
        other => panic!("expected stats, got {other:?}"),
    };
    assert_eq!(
        det, det2,
        "registry snapshot is a pure function of the request history"
    );

    server.drain();
    server.join().unwrap();
    server2.drain();
    server2.join().unwrap();
}

#[test]
fn daemon_rows_are_byte_identical_to_ldc_batch_on_the_e17_fixture() {
    let spec_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../ci/fleet_e17.json"
    ))
    .expect("shared fixture");
    let jobs = parse_spec_file(&spec_text).unwrap();

    // What `ldc batch` emits, at several shard/thread settings — the
    // per-job rows are identical across all of them by the fleet's own
    // determinism promise, so any one is the reference.
    let reference: Vec<String> = Fleet::new(4)
        .with_solver_threads(2)
        .run(&jobs)
        .outcomes
        .into_iter()
        .map(|o| o.row)
        .collect();

    // Daemon at assorted worker/thread settings, replayed with
    // id = job index.
    for (workers, solver_threads, shared) in [(1, 1, false), (3, 2, false), (2, 1, true)] {
        let server = start("bytes", |cfg| {
            cfg.workers = workers;
            cfg.solver_threads = solver_threads;
            cfg.shared_kernels = shared;
            cfg.queue_cap = 64;
        });
        let rows = loadgen::replay(server.socket_path(), &jobs).unwrap();
        assert_eq!(
            rows, reference,
            "served rows diverge at workers={workers} threads={solver_threads} shared={shared}"
        );
        server.drain();
        server.join().unwrap();
    }
}
