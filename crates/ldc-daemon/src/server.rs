//! The `ldcd` server: a long-lived solve service over a Unix domain
//! socket (DESIGN.md §15).
//!
//! One process holds the warm state that `ldc batch` rebuilds per
//! invocation — the built-graph cache, the optional fleet-shared kernel
//! cache, and the telemetry registry — and serves [`crate::proto`]
//! requests against it. Every solve goes through [`Fleet::run_one`],
//! the same single-job core `ldc batch` shards over, so a served row is
//! byte-identical to the row the batch runner would emit for the same
//! spec at the same job index, at every shard/thread setting.
//!
//! ## Admission control
//!
//! Capacity is `workers + queue_cap` jobs in flight (executing plus
//! queued). The window is claimed atomically at admission, so whether a
//! request is accepted depends only on how many admitted jobs have not
//! yet been *answered* — not on how far the workers happen to have
//! gotten — which makes queue-full behaviour reproducible: with one
//! worker and `queue_cap = q`, the `(q + 2)`-th concurrently-pending
//! solve is always the first to see [`Response::Busy`]. Busy responses
//! carry `retry_after_ms` and never close the connection.
//!
//! ## Drain
//!
//! SIGTERM (via [`crate::signal`]), a `shutdown` request, or
//! [`ServerHandle::drain`] all set one flag. From then on: no new
//! connections are accepted, new solves are refused with the typed
//! `draining` error, and every already-admitted job still runs to
//! completion with its result delivered before its connection closes.
//! Nothing in the server blocks uninterruptibly: the listener and every
//! connection poll with short timeouts, so the flag is observed within
//! tens of milliseconds.

use std::collections::VecDeque;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use ldc_batch::{Fleet, GraphCache, JobSpec};
use ldc_core::kernels::SharedTypeCache;
use ldc_sim::telemetry::Registry;

use crate::proto::{error_response, Request, Response};
use crate::signal;
use crate::wire::{read_frame, write_frame, ReadEvent};

/// How often blocked loops re-check shutdown flags.
const POLL: Duration = Duration::from_millis(25);

/// Tuning for one [`serve`] call.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Path of the Unix socket to bind (a stale file is replaced).
    pub socket_path: PathBuf,
    /// Solve worker threads (≥ 1).
    pub workers: usize,
    /// Jobs that may wait beyond the executing ones; admission window is
    /// `workers + queue_cap`.
    pub queue_cap: usize,
    /// Per-solver phase parallelism, as `ldc batch --solver-threads`.
    pub solver_threads: usize,
    /// Share one kernel cache across all served jobs, as
    /// `ldc batch --shared-cache`.
    pub shared_kernels: bool,
    /// Backoff hint carried by [`Response::Busy`].
    pub retry_after_ms: u64,
    /// Observe SIGTERM/SIGINT (via [`signal::termination_requested`])
    /// as a drain trigger. `ldc serve` sets this; in-process tests that
    /// should not react to a stray Ctrl-C leave it off.
    pub heed_signals: bool,
}

impl ServerConfig {
    /// Defaults: one worker, queue of 16, no phase parallelism, no
    /// shared kernels, 50 ms busy backoff, signals ignored.
    pub fn new<P: Into<PathBuf>>(socket_path: P) -> ServerConfig {
        ServerConfig {
            socket_path: socket_path.into(),
            workers: 1,
            queue_cap: 16,
            solver_threads: 1,
            shared_kernels: false,
            retry_after_ms: 50,
            heed_signals: false,
        }
    }
}

/// One admitted solve waiting for (or holding) a worker.
struct Job {
    id: u64,
    spec: JobSpec,
    conn: Arc<Conn>,
}

/// Per-connection shared state: the write half (frames from the reader
/// thread and from workers interleave under this lock, each frame
/// atomic) and the count of admitted-but-unanswered jobs.
struct Conn {
    writer: Mutex<UnixStream>,
    pending: AtomicUsize,
}

impl Conn {
    fn send(&self, resp: &Response) {
        // A vanished client is not a server error; its jobs already ran.
        let mut w = match self.writer.lock() {
            Ok(w) => w,
            Err(p) => p.into_inner(),
        };
        let _ = write_frame(&mut *w, resp.render().as_bytes());
    }
}

/// Everything the accept loop, connection readers, and workers share.
struct Shared {
    cfg: ServerConfig,
    fleet: Fleet,
    graphs: Mutex<GraphCache>,
    kernels: Option<Arc<SharedTypeCache>>,
    registry: Mutex<Registry>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    in_flight: AtomicUsize,
    draining: AtomicBool,
    /// Set by the accept loop once every connection thread has exited.
    /// Workers keep serving until then: a drain can race a reader that
    /// just admitted a job, and the admitted job must still run, so the
    /// "no more work can arrive" signal is connection death, not the
    /// drain flag.
    conns_done: AtomicBool,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
            || (self.cfg.heed_signals && signal::termination_requested())
    }

    fn count(&self, name: &str) {
        match self.registry.lock() {
            Ok(mut r) => r.counter_add(name, 1),
            Err(p) => p.into_inner().counter_add(name, 1),
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::drain`] then [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept_thread: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound socket path.
    pub fn socket_path(&self) -> &Path {
        &self.shared.cfg.socket_path
    }

    /// Trigger a graceful drain (idempotent).
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Whether a drain is underway.
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// Wait for the drain to complete: accept loop down, every admitted
    /// job answered, workers exited, socket file removed.
    pub fn join(mut self) -> io::Result<()> {
        if let Some(t) = self.accept_thread.take() {
            t.join()
                .map_err(|_| io::Error::other("accept thread panicked"))?;
        }
        for w in self.workers.drain(..) {
            w.join()
                .map_err(|_| io::Error::other("worker thread panicked"))?;
        }
        let _ = std::fs::remove_file(&self.shared.cfg.socket_path);
        Ok(())
    }
}

/// Bind the socket and start serving in background threads.
pub fn serve(cfg: ServerConfig) -> io::Result<ServerHandle> {
    // Replace a stale socket from a previous run; refuse anything that
    // isn't one (never unlink a file the daemon didn't create).
    if let Ok(meta) = std::fs::symlink_metadata(&cfg.socket_path) {
        use std::os::unix::fs::FileTypeExt;
        if !meta.file_type().is_socket() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} exists and is not a socket", cfg.socket_path.display()),
            ));
        }
        std::fs::remove_file(&cfg.socket_path)?;
    }
    let listener = UnixListener::bind(&cfg.socket_path)?;
    listener.set_nonblocking(true)?;
    if cfg.heed_signals {
        signal::install();
    }

    let fleet = Fleet::new(1)
        .with_solver_threads(cfg.solver_threads)
        .with_shared_kernels(cfg.shared_kernels);
    let kernels = cfg.shared_kernels.then(SharedTypeCache::with_defaults);
    let workers = cfg.workers.max(1);
    let shared = Arc::new(Shared {
        cfg,
        fleet,
        graphs: Mutex::new(GraphCache::new()),
        kernels,
        registry: Mutex::new(Registry::new()),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        in_flight: AtomicUsize::new(0),
        draining: AtomicBool::new(false),
        conns_done: AtomicBool::new(false),
    });

    let worker_threads = (0..workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("ldcd-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect::<io::Result<Vec<_>>>()?;

    let accept_shared = Arc::clone(&shared);
    let accept_thread = thread::Builder::new()
        .name("ldcd-accept".to_string())
        .spawn(move || accept_loop(listener, &accept_shared))?;

    Ok(ServerHandle {
        shared,
        accept_thread: Some(accept_thread),
        workers: worker_threads,
    })
}

fn accept_loop(listener: UnixListener, shared: &Arc<Shared>) {
    let mut conns: Vec<thread::JoinHandle<()>> = Vec::new();
    loop {
        if shared.draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                if let Ok(t) = thread::Builder::new()
                    .name("ldcd-conn".to_string())
                    .spawn(move || connection_loop(stream, &shared))
                {
                    conns.push(t);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                thread::sleep(POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => thread::sleep(POLL),
        }
        conns.retain(|t| !t.is_finished());
    }
    // Drain: wake the workers, then wait for every connection to finish
    // delivering its admitted results.
    shared.queue_cv.notify_all();
    for t in conns {
        let _ = t.join();
    }
    shared.conns_done.store(true, Ordering::SeqCst);
    shared.queue_cv.notify_all();
}

fn connection_loop(stream: UnixStream, shared: &Arc<Shared>) {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let conn = Arc::new(Conn {
        writer: Mutex::new(stream),
        pending: AtomicUsize::new(0),
    });
    let mut reader = reader;
    loop {
        if shared.draining() && conn.pending.load(Ordering::SeqCst) == 0 {
            // Every admitted job is answered; close so clients observe
            // the drain as EOF at a frame boundary.
            break;
        }
        match read_frame(&mut reader) {
            Ok(ReadEvent::Frame(payload)) => handle_frame(&payload, &conn, shared),
            Ok(ReadEvent::Idle) => {}
            Ok(ReadEvent::Eof) => break,
            Err(e) => {
                // Oversized announcement or mid-frame loss: the stream
                // cannot be resynchronised. Say why, then hang up.
                conn.send(&error_response(("bad_frame", e.to_string())));
                break;
            }
        }
    }
    // If the client vanished with jobs still admitted, stay until the
    // workers answer them (writes go to a dead socket and are ignored)
    // so in_flight accounting always returns to rest.
    while conn.pending.load(Ordering::SeqCst) > 0 {
        thread::sleep(POLL);
    }
}

fn handle_frame(payload: &[u8], conn: &Arc<Conn>, shared: &Arc<Shared>) {
    shared.count("daemon.requests");
    let req = match Request::parse(payload) {
        Ok(req) => req,
        Err(e) => {
            shared.count("daemon.proto_errors");
            conn.send(&error_response(e));
            return;
        }
    };
    match req {
        Request::Ping => {
            shared.count("daemon.ping");
            conn.send(&Response::Pong);
        }
        Request::Stats => {
            shared.count("daemon.stats");
            conn.send(&Response::Stats {
                det: stats_snapshot(shared),
            });
        }
        Request::Shutdown => {
            shared.count("daemon.shutdown");
            shared.draining.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            conn.send(&Response::Pong);
        }
        Request::Solve { id, job } => {
            if shared.draining() {
                shared.count("daemon.draining_rejects");
                conn.send(&error_response((
                    "draining",
                    "server is draining; no new jobs".to_string(),
                )));
                return;
            }
            let window = shared.cfg.workers.max(1) + shared.cfg.queue_cap;
            let admitted = shared
                .in_flight
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                    (n < window).then_some(n + 1)
                })
                .is_ok();
            if !admitted {
                shared.count("daemon.busy");
                conn.send(&Response::Busy {
                    retry_after_ms: shared.cfg.retry_after_ms,
                });
                return;
            }
            shared.count("daemon.admitted");
            conn.pending.fetch_add(1, Ordering::SeqCst);
            match shared.queue.lock() {
                Ok(mut q) => q.push_back(Job {
                    id,
                    spec: *job,
                    conn: Arc::clone(conn),
                }),
                Err(p) => p.into_inner().push_back(Job {
                    id,
                    spec: *job,
                    conn: Arc::clone(conn),
                }),
            }
            shared.queue_cv.notify_one();
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = match shared.queue.lock() {
                Ok(q) => q,
                Err(p) => p.into_inner(),
            };
            loop {
                if let Some(job) = q.pop_front() {
                    break Some(job);
                }
                if shared.conns_done.load(Ordering::SeqCst) {
                    break None;
                }
                q = match shared.queue_cv.wait_timeout(q, POLL) {
                    Ok((q, _)) => q,
                    Err(p) => p.into_inner().0,
                };
            }
        };
        let Some(job) = job else { return };
        run_job(job, shared);
    }
}

fn run_job(job: Job, shared: &Arc<Shared>) {
    let graph = {
        let mut cache = match shared.graphs.lock() {
            Ok(c) => c,
            Err(p) => p.into_inner(),
        };
        cache.resolve(&job.spec.graph)
    };
    let outcome = shared
        .fleet
        .run_one(job.id as usize, &job.spec, &graph, shared.kernels.as_ref());
    {
        let mut reg = match shared.registry.lock() {
            Ok(r) => r,
            Err(p) => p.into_inner(),
        };
        reg.counter_add("daemon.solved", 1);
        if !outcome.ok {
            reg.counter_add("daemon.failed_jobs", 1);
        }
        reg.counter_add("daemon.rounds_total", outcome.rounds);
        reg.hist_record("daemon.rounds", outcome.rounds);
    }
    job.conn.send(&Response::Result {
        id: job.id,
        row: outcome.row,
    });
    job.conn.pending.fetch_sub(1, Ordering::SeqCst);
    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
}

/// Deterministic registry snapshot: counters/gauges/histograms only —
/// no wall-clock, no host fields (DESIGN.md §12 det/timing split). The
/// graph-cache gauges are folded in at snapshot time.
fn stats_snapshot(shared: &Arc<Shared>) -> String {
    let (hits, misses, built) = {
        let cache = match shared.graphs.lock() {
            Ok(c) => c,
            Err(p) => p.into_inner(),
        };
        (cache.hits(), cache.misses(), cache.len() as u64)
    };
    let mut reg = match shared.registry.lock() {
        Ok(r) => r,
        Err(p) => p.into_inner(),
    };
    reg.gauge_set("daemon.graph_cache_hits", hits);
    reg.gauge_set("daemon.graph_cache_misses", misses);
    reg.gauge_set("daemon.graphs_built", built);
    reg.gauge_set("daemon.workers", shared.cfg.workers.max(1) as u64);
    reg.gauge_set("daemon.queue_cap", shared.cfg.queue_cap as u64);
    reg.to_json()
}
