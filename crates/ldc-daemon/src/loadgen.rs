//! RPS-ramp load generator for `ldcd` (experiment E20).
//!
//! Open-loop driver modeled on production scalability suites: offered
//! load starts at `initial_rps` and climbs by `increment_rps` per step
//! up to `max_rps`, each step lasting `step_ms`. Requests are spread
//! evenly across the step and round-robined over `connections`
//! pipelined connections — send timing never waits for responses, so a
//! saturated server sees a genuine backlog instead of a self-throttling
//! client.
//!
//! Per-request latency lands in the workspace's log₂ [`Histogram`]
//! (DESIGN.md §12), and the *knee* — the first step where the service
//! stops keeping up — is the first step where either p95 latency
//! crosses `p95_threshold_ms` or completed requests fall below
//! `ok_floor_pct`% of offered (busy rejections and errors both count
//! against completion).
//!
//! Determinism discipline: request counts and step schedule are pure
//! functions of the config, so they belong to det rows; latencies,
//! ok/busy splits, and the knee depend on machine load and stay in the
//! timing section (DESIGN.md §7).
//!
//! [`replay`] is the closed-loop little sibling: it pushes a whole
//! `ldc batch` spec file through one connection with `id = job index`
//! and returns the result rows in order — the daemon-vs-batch
//! byte-equality check rides on it.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use ldc_batch::{Algorithm, GraphSource, JobSpec, ListSpec};
use ldc_sim::telemetry::Histogram;

use crate::client::Client;
use crate::proto::{Request, Response};

/// Tuning for one [`run_ramp`] call.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon socket to drive.
    pub socket_path: PathBuf,
    /// Concurrent pipelined connections.
    pub connections: usize,
    /// Offered load of the first step, requests/second.
    pub initial_rps: u64,
    /// Offered-load increase per step.
    pub increment_rps: u64,
    /// Last step's offered load (inclusive).
    pub max_rps: u64,
    /// Step duration in milliseconds.
    pub step_ms: u64,
    /// Knee rule 1: p95 latency ceiling in milliseconds.
    pub p95_threshold_ms: u64,
    /// Knee rule 2: minimum completed/offered percentage.
    pub ok_floor_pct: u64,
    /// The probe job every request solves.
    pub job: JobSpec,
}

impl LoadgenConfig {
    /// Full-ramp defaults: 4 connections, 10→100 rps in steps of 10,
    /// 1 s steps, knee at p95 > 250 ms or < 90% completion.
    pub fn new<P: Into<PathBuf>>(socket_path: P) -> LoadgenConfig {
        LoadgenConfig {
            socket_path: socket_path.into(),
            connections: 4,
            initial_rps: 10,
            increment_rps: 10,
            max_rps: 100,
            step_ms: 1000,
            p95_threshold_ms: 250,
            ok_floor_pct: 90,
            job: probe_job(),
        }
    }

    /// CI-sized ramp: 2 connections, 20→60 rps in steps of 20, 250 ms
    /// steps. Finishes in under a second of driving time.
    pub fn smoke<P: Into<PathBuf>>(socket_path: P) -> LoadgenConfig {
        LoadgenConfig {
            connections: 2,
            initial_rps: 20,
            increment_rps: 20,
            max_rps: 60,
            step_ms: 250,
            ..LoadgenConfig::new(socket_path)
        }
    }
}

/// The default probe: a small ring instance that solves in well under a
/// millisecond, so the ramp measures the service, not the solver.
pub fn probe_job() -> JobSpec {
    JobSpec {
        graph: GraphSource::Ring { n: 64 },
        algorithm: Algorithm::Congest,
        lists: ListSpec::default(),
        seed: 1,
        faults: None,
    }
}

/// One ramp step's outcome.
#[derive(Debug)]
pub struct StepStats {
    /// 1-based step number.
    pub step: u64,
    /// Offered load this step, requests/second.
    pub rps: u64,
    /// Requests actually offered (`rps × step_ms / 1000`, min 1).
    pub requests: u64,
    /// Requests answered with a result row.
    pub ok: u64,
    /// Requests answered with `busy`.
    pub busy: u64,
    /// Requests answered with a typed error, a transport failure, or
    /// nothing before the collection deadline.
    pub errors: u64,
    /// Latency of `ok` requests, nanoseconds, log₂-bucketed.
    pub latency: Histogram,
}

/// The whole ramp.
#[derive(Debug)]
pub struct LoadgenReport {
    /// Per-step outcomes, in ramp order.
    pub steps: Vec<StepStats>,
    /// Offered rps of the first step that broke a knee rule, if any.
    pub knee_rps: Option<u64>,
}

enum Event {
    /// A response landed: id, verdict, and *arrival* time — latency must
    /// be clocked in the reader thread, because the driver only drains
    /// events after it finishes sending the step (drain-time clocking
    /// would silently add up to a whole step of queueing that never
    /// happened).
    Done(u64, Kind, Instant),
    ConnClosed,
}

enum Kind {
    Ok,
    Busy,
    Err,
}

/// Drive the ramp against a running daemon.
pub fn run_ramp(cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let conns = cfg.connections.max(1);
    let (tx, rx) = mpsc::channel::<Event>();
    let mut senders = Vec::with_capacity(conns);
    let mut readers = Vec::with_capacity(conns);
    for _ in 0..conns {
        let (send_half, mut recv_half) = Client::connect(&cfg.socket_path)?.split()?;
        let tx = tx.clone();
        readers.push(thread::spawn(move || loop {
            match recv_half.recv() {
                Ok(Some(Response::Result { id, .. })) => {
                    let _ = tx.send(Event::Done(id, Kind::Ok, Instant::now()));
                }
                Ok(Some(Response::Busy { .. })) => {
                    // Busy answers race result answers for the id order,
                    // but ids are unique so attribution is exact.
                    let _ = tx.send(Event::Done(u64::MAX, Kind::Busy, Instant::now()));
                }
                Ok(Some(_)) => {
                    let _ = tx.send(Event::Done(u64::MAX, Kind::Err, Instant::now()));
                }
                Ok(None) | Err(_) => {
                    let _ = tx.send(Event::ConnClosed);
                    return;
                }
            }
        }));
        senders.push(send_half);
    }
    drop(tx);

    let mut report = LoadgenReport {
        steps: Vec::new(),
        knee_rps: None,
    };
    let mut next_id: u64 = 0;
    let mut rps = cfg.initial_rps.max(1);
    let mut step_no = 0u64;
    while rps <= cfg.max_rps {
        step_no += 1;
        let requests = (rps * cfg.step_ms / 1000).max(1);
        let interval = Duration::from_nanos(cfg.step_ms * 1_000_000 / requests);
        let mut sent: HashMap<u64, Instant> = HashMap::with_capacity(requests as usize);
        let mut stats = StepStats {
            step: step_no,
            rps,
            requests,
            ok: 0,
            busy: 0,
            errors: 0,
            latency: Histogram::new(),
        };

        let step_start = Instant::now();
        for i in 0..requests {
            let due = step_start + interval * (i as u32);
            let now = Instant::now();
            if due > now {
                thread::sleep(due - now);
            }
            let id = next_id;
            next_id += 1;
            let conn = (id as usize) % senders.len();
            sent.insert(id, Instant::now());
            if senders[conn]
                .send(&Request::Solve {
                    id,
                    job: Box::new(cfg.job.clone()),
                })
                .is_err()
            {
                sent.remove(&id);
                stats.errors += 1;
            }
        }

        // Collect until every offered request of this step is accounted
        // for, with a hard deadline so a wedged server cannot hang the
        // driver.
        let deadline = Instant::now() + Duration::from_millis(cfg.step_ms * 4 + 5000);
        let mut answered = stats.errors; // send failures are already settled
        while answered < requests {
            let now = Instant::now();
            if now >= deadline {
                stats.errors += requests - answered;
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(Event::Done(id, kind, at)) => {
                    answered += 1;
                    match kind {
                        Kind::Ok => {
                            stats.ok += 1;
                            if let Some(t0) = sent.remove(&id) {
                                stats.latency.record((at - t0).as_nanos() as u64);
                            }
                        }
                        Kind::Busy => stats.busy += 1,
                        Kind::Err => stats.errors += 1,
                    }
                }
                Ok(Event::ConnClosed) => {
                    stats.errors += requests - answered;
                    break;
                }
                Err(_) => {
                    stats.errors += requests - answered;
                    break;
                }
            }
        }
        if report.knee_rps.is_none() {
            let p95_ns = stats.latency.percentile(95.0);
            let over_latency = p95_ns > cfg.p95_threshold_ms * 1_000_000;
            let under_throughput = stats.ok * 100 < requests * cfg.ok_floor_pct;
            if over_latency || under_throughput {
                report.knee_rps = Some(rps);
            }
        }
        report.steps.push(stats);
        rps += cfg.increment_rps.max(1);
    }

    for s in &mut senders {
        s.finish();
    }
    for r in readers {
        let _ = r.join();
    }
    Ok(report)
}

/// Closed-loop replay of a batch job list through one connection, `id =
/// index`, returning result rows in job order. The rows are exactly the
/// per-job lines `ldc batch` writes for the same list.
pub fn replay<P: AsRef<Path>>(socket_path: P, jobs: &[JobSpec]) -> io::Result<Vec<String>> {
    let mut client = Client::connect(socket_path)?;
    let mut rows = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        loop {
            match client.solve(i as u64, job)? {
                Response::Result { id, row } => {
                    if id != i as u64 {
                        return Err(io::Error::other(format!(
                            "replay answer out of order: sent {i}, got {id}"
                        )));
                    }
                    rows.push(row);
                    break;
                }
                Response::Busy { retry_after_ms } => {
                    thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 1000)));
                }
                Response::Error { code, message } => {
                    return Err(io::Error::other(format!("daemon error {code}: {message}")));
                }
                other => {
                    return Err(io::Error::other(format!("unexpected reply: {other:?}")));
                }
            }
        }
    }
    Ok(rows)
}
