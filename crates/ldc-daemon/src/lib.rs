//! **`ldcd`** — the long-lived solve daemon (DESIGN.md §15).
//!
//! `ldc batch` pays its startup costs — process spawn, graph builds,
//! cold kernel caches — on every invocation. This crate keeps that
//! state warm in one process and serves solve requests over a Unix
//! domain socket, using a hand-rolled, versioned wire protocol (the
//! workspace is zero-dependency end to end):
//!
//! * [`wire`] — 4-byte big-endian length prefix + UTF-8 JSON frames,
//!   robust to partial reads/writes, capped at [`wire::MAX_FRAME`].
//! * [`proto`] — the `"v":1` request/response grammar; malformed input
//!   maps to typed error codes, never connection teardown.
//! * [`server`] — accept loop, bounded admission queue with typed
//!   `busy` backpressure, solve workers funneling through
//!   [`ldc_batch::Fleet::run_one`] (rows byte-identical to `ldc
//!   batch`), graceful drain on SIGTERM/`shutdown`.
//! * [`client`] — blocking client, splittable for pipelining.
//! * [`loadgen`] — RPS-ramp load generator with knee detection
//!   (experiment E20) and the closed-loop [`loadgen::replay`] used by
//!   the daemon-vs-batch byte-equality check.
//! * [`signal`] — SIGTERM/SIGINT → drain flag, the crate's one
//!   `unsafe` allowance.
//!
//! The socket layer is Unix-only; [`wire`] and [`proto`] are
//! platform-neutral.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;
pub mod wire;

#[cfg(unix)]
pub mod client;
#[cfg(unix)]
pub mod loadgen;
#[cfg(unix)]
pub mod server;
#[cfg(unix)]
pub mod signal;

#[cfg(unix)]
pub use client::Client;
#[cfg(unix)]
pub use loadgen::{run_ramp, LoadgenConfig, LoadgenReport};
pub use proto::{Request, Response};
#[cfg(unix)]
pub use server::{serve, ServerConfig, ServerHandle};
