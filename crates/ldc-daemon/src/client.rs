//! Blocking `ldcd` client: one Unix-socket connection speaking
//! [`crate::proto`] over [`crate::wire`] frames.
//!
//! [`Client`] is the simple request/response surface (`ping`, `solve`,
//! `stats`, `shutdown`) used by tests and the replay path. The load
//! generator needs pipelining — many solves in flight per connection —
//! so [`Client::split`] hands out independently-owned send and receive
//! halves (two `try_clone`s of the socket) that different threads drive
//! concurrently.

use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use ldc_batch::JobSpec;

use crate::proto::{Request, Response};
use crate::wire::{read_frame, write_frame, ReadEvent};

/// A connected client.
pub struct Client {
    stream: UnixStream,
}

/// The write half of a split connection.
pub struct Sender {
    stream: UnixStream,
}

/// The read half of a split connection.
pub struct Receiver {
    stream: UnixStream,
}

impl Client {
    /// Connect to a daemon socket, retrying briefly while the server is
    /// still binding (a just-spawned daemon races its first client).
    pub fn connect<P: AsRef<Path>>(path: P) -> io::Result<Client> {
        let path = path.as_ref();
        let mut last = None;
        for _ in 0..100 {
            match UnixStream::connect(path) {
                Ok(stream) => return Ok(Client { stream }),
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("connect failed")))
    }

    /// Send one request frame.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, req.render().as_bytes())
    }

    /// Receive one response frame. `Ok(None)` means the server closed
    /// the connection at a frame boundary (e.g. after a drain).
    pub fn recv(&mut self) -> io::Result<Option<Response>> {
        recv_on(&mut self.stream)
    }

    /// Round-trip a ping.
    pub fn ping(&mut self) -> io::Result<Response> {
        self.send(&Request::Ping)?;
        self.expect_one()
    }

    /// Solve one job and wait for its answer (result, busy, or error).
    pub fn solve(&mut self, id: u64, job: &JobSpec) -> io::Result<Response> {
        self.send(&Request::Solve {
            id,
            job: Box::new(job.clone()),
        })?;
        self.expect_one()
    }

    /// Fetch the deterministic stats snapshot.
    pub fn stats(&mut self) -> io::Result<Response> {
        self.send(&Request::Stats)?;
        self.expect_one()
    }

    /// Ask the server to drain; returns its acknowledgement.
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.send(&Request::Shutdown)?;
        self.expect_one()
    }

    /// Send raw bytes as one frame — tests use this to deliver payloads
    /// a well-behaved client never would.
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stream, payload)
    }

    /// Split into independently-driven send/receive halves.
    pub fn split(self) -> io::Result<(Sender, Receiver)> {
        let send = self.stream.try_clone()?;
        Ok((
            Sender { stream: send },
            Receiver {
                stream: self.stream,
            },
        ))
    }

    fn expect_one(&mut self) -> io::Result<Response> {
        self.recv()?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before answering",
            )
        })
    }
}

impl Sender {
    /// Send one request frame without waiting for any response.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, req.render().as_bytes())
    }

    /// Signal end-of-requests: half-close the socket so the server
    /// answers what it has and then closes, letting the paired
    /// [`Receiver`] observe EOF.
    pub fn finish(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
    }
}

impl Receiver {
    /// Receive one response frame; `Ok(None)` on clean close.
    pub fn recv(&mut self) -> io::Result<Option<Response>> {
        recv_on(&mut self.stream)
    }
}

fn recv_on(stream: &mut UnixStream) -> io::Result<Option<Response>> {
    loop {
        match read_frame(stream)? {
            ReadEvent::Frame(payload) => {
                return Response::parse(&payload).map(Some).map_err(|(code, msg)| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("{code}: {msg}"))
                })
            }
            ReadEvent::Idle => {}
            ReadEvent::Eof => return Ok(None),
        }
    }
}
