//! SIGTERM/SIGINT → drain-flag plumbing, without libc.
//!
//! The daemon promises graceful drain on SIGTERM (DESIGN.md §15), and
//! the workspace is zero-dependency, so the handler is registered
//! through the C `signal(2)` symbol directly. This is the only `unsafe`
//! in the crate (the crate is `deny(unsafe_code)` with an allowance
//! here, mirroring `ldc_sim::pool`): the handler itself only stores to
//! a static `AtomicBool`, which is async-signal-safe, and the server's
//! accept loop polls the flag from ordinary code.
//!
//! `signal(2)` (as opposed to `sigaction`) leaves syscall restart
//! semantics platform-defined, so nothing in the daemon ever blocks
//! indefinitely in a syscall: the listener and every connection run
//! with short timeouts and poll [`termination_requested`].

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler on SIGTERM/SIGINT; also settable by tests via
/// [`raise_term`].
static TERM: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has arrived since [`install`].
pub fn termination_requested() -> bool {
    TERM.load(Ordering::SeqCst)
}

/// Reset the flag (tests only — a real daemon exits once it drains).
pub fn clear_termination() {
    TERM.store(false, Ordering::SeqCst);
}

/// Mark termination as requested without an actual signal, exercising
/// exactly the path the handler takes.
pub fn raise_term() {
    TERM.store(true, Ordering::SeqCst);
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

#[allow(unsafe_code)]
mod ffi {
    use super::{Ordering, SIGINT, SIGTERM, TERM};

    extern "C" {
        /// C89 `signal(2)`: present in every libc this workspace targets.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work: one atomic store.
        TERM.store(true, Ordering::SeqCst);
    }

    /// Register the handler for SIGTERM and SIGINT.
    pub fn install_handlers() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// Install the SIGTERM/SIGINT handler. Idempotent; call once from
/// `ldc serve` before entering the accept loop.
pub fn install() {
    ffi::install_handlers();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_raise_term_sets_it() {
        clear_termination();
        assert!(!termination_requested());
        raise_term();
        assert!(termination_requested());
        clear_termination();
    }

    #[test]
    fn install_is_callable_and_idempotent() {
        install();
        install();
    }
}
