//! Length-prefixed frame transport (DESIGN.md §15).
//!
//! Every message on an `ldcd` connection — in either direction — is one
//! *frame*: a 4-byte big-endian `u32` payload length followed by exactly
//! that many bytes of UTF-8 JSON. Framing and JSON are layered: this
//! module moves opaque byte payloads and never inspects them, while
//! [`crate::proto`] owns the JSON grammar. Both reader and writer are
//! plain loops over `read`/`write`, so partial reads and writes (short
//! syscalls, signal interruptions, slow peers) reassemble transparently.
//!
//! A frame longer than [`MAX_FRAME`] is rejected without allocating: once
//! the length prefix is implausible the stream can never be resynchronised,
//! so the connection is surrendered rather than the process.

use std::io::{self, Read, Write};

/// Hard cap on a single frame's payload (16 MiB). Generous against the
/// largest observed solve rows (a few KiB) while keeping a hostile or
/// corrupt length prefix from forcing a giant allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// One read attempt on a frame boundary.
#[derive(Debug)]
pub enum ReadEvent {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The read timeout expired with **zero** bytes consumed — the
    /// connection is idle at a frame boundary. Only surfaced between
    /// frames; a timeout mid-frame keeps reading (the prefix promised
    /// more bytes).
    Idle,
    /// Clean end of stream at a frame boundary.
    Eof,
}

/// Write one frame: length prefix, then the payload, looping until every
/// byte is accepted.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds MAX_FRAME {MAX_FRAME}",
                payload.len()
            ),
        ));
    }
    let len = (payload.len() as u32).to_be_bytes();
    write_all_retry(w, &len)?;
    write_all_retry(w, payload)?;
    w.flush()
}

/// `write_all` that also rides through `WouldBlock`/`TimedOut` (a peer
/// draining slowly is not an error, just a longer write).
fn write_all_retry<W: Write>(w: &mut W, mut buf: &[u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match w.write(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer stopped accepting bytes mid-frame",
                ))
            }
            Ok(n) => buf = &buf[n..],
            Err(e) if retryable(&e) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Read one frame, blocking until it completes, the stream ends, or the
/// reader's timeout fires on an idle boundary.
///
/// * Clean EOF before any prefix byte → [`ReadEvent::Eof`].
/// * Timeout before any prefix byte → [`ReadEvent::Idle`] (callers poll
///   shutdown flags here).
/// * EOF after at least one byte of an announced frame → `UnexpectedEof`
///   error: the peer vanished mid-frame and the stream is unusable.
/// * Prefix larger than [`MAX_FRAME`] → `InvalidData` error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<ReadEvent> {
    let mut prefix = [0u8; 4];
    match read_full(r, &mut prefix, true)? {
        Progress::Done => {}
        Progress::IdleBoundary => return Ok(ReadEvent::Idle),
        Progress::EofBoundary => return Ok(ReadEvent::Eof),
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("announced frame of {len} bytes exceeds MAX_FRAME {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len];
    match read_full(r, &mut payload, false)? {
        Progress::Done => Ok(ReadEvent::Frame(payload)),
        Progress::IdleBoundary | Progress::EofBoundary => unreachable!("only at boundaries"),
    }
}

enum Progress {
    Done,
    IdleBoundary,
    EofBoundary,
}

/// Fill `buf` completely. With `at_boundary`, zero-byte outcomes (EOF,
/// timeout) are reported as boundary states instead of errors; once the
/// first byte lands, anything short of a full buffer is `UnexpectedEof`
/// and timeouts keep looping.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], at_boundary: bool) -> io::Result<Progress> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && at_boundary {
                    return Ok(Progress::EofBoundary);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("stream ended after {filled} of {} frame bytes", buf.len()),
                ));
            }
            Ok(n) => filled += n,
            Err(e) if retryable(&e) => {
                if filled == 0 && at_boundary {
                    return Ok(Progress::IdleBoundary);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Progress::Done)
}

fn retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut stream = frame_bytes(b"{\"a\":1}");
        stream.extend(frame_bytes(b""));
        stream.extend(frame_bytes(b"tail"));
        let mut r = Cursor::new(stream);
        for expect in [&b"{\"a\":1}"[..], b"", b"tail"] {
            match read_frame(&mut r).unwrap() {
                ReadEvent::Frame(p) => assert_eq!(p, expect),
                other => panic!("expected frame, got {other:?}"),
            }
        }
        assert!(matches!(read_frame(&mut r).unwrap(), ReadEvent::Eof));
    }

    #[test]
    fn truncated_frame_is_unexpected_eof_not_a_hang() {
        // Announce 10 bytes, deliver 3.
        let mut stream = 10u32.to_be_bytes().to_vec();
        stream.extend(b"abc");
        let err = match read_frame(&mut Cursor::new(stream)) {
            Err(e) => e,
            Ok(ev) => panic!("expected error, got {ev:?}"),
        };
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Truncated *prefix* too: 2 of 4 length bytes.
        let err = read_frame(&mut Cursor::new(vec![0u8, 0u8])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_announcement_is_rejected_before_allocating() {
        let stream = ((MAX_FRAME as u32) + 1).to_be_bytes().to_vec();
        let err = read_frame(&mut Cursor::new(stream)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = write_frame(&mut Vec::new(), &vec![0u8; MAX_FRAME + 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    /// A reader that delivers one byte per call: every frame arrives via
    /// maximally-partial reads.
    struct Trickle(Cursor<Vec<u8>>);
    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let take = 1.min(buf.len());
            self.0.read(&mut buf[..take])
        }
    }

    #[test]
    fn partial_reads_reassemble() {
        let payload = b"partial delivery still lands intact";
        let mut r = Trickle(Cursor::new(frame_bytes(payload)));
        match read_frame(&mut r).unwrap() {
            ReadEvent::Frame(p) => assert_eq!(p, payload),
            other => panic!("expected frame, got {other:?}"),
        }
    }
}
