//! The `ldcd` wire grammar (DESIGN.md §15): versioned JSON request and
//! response payloads carried inside [`crate::wire`] frames.
//!
//! Every payload is a JSON object whose **first** member is the schema
//! version, `"v":1` — the same version number as [`ldc_batch::SPEC_VERSION`],
//! because a solve request embeds a [`JobSpec`] and the two schemas
//! evolve together. Unlike the spec file format (where a missing `"v"`
//! is read as version 1, so pre-versioning fixtures keep parsing), a
//! wire frame must carry the field explicitly: peers negotiate nothing,
//! so the version is the only compatibility signal.
//!
//! Malformed payloads map to typed [`Response::Error`] codes and never
//! tear down the connection — the frame boundary is intact, so the next
//! frame is readable regardless of what this one contained:
//!
//! | code           | meaning                                          |
//! |----------------|--------------------------------------------------|
//! | `bad_frame`    | payload is not UTF-8 or not JSON                 |
//! | `bad_version`  | missing or unsupported `"v"`                     |
//! | `unknown_type` | `"type"` absent or not a known request           |
//! | `bad_request`  | well-typed envelope, invalid fields (bad JobSpec)|
//! | `busy`         | admission queue full (carried by `Busy`, not `Error`) |
//! | `draining`     | server is shutting down; no new solves           |
//!
//! A `result` response renders its `row` as the **final** member, raw:
//! the row bytes are exactly one line of `ldc batch` output, and keeping
//! them last lets clients recover them byte-for-byte by slicing the
//! envelope (see [`Response::split_result`]) instead of re-serialising
//! through a JSON tree, which would not be byte-stable.

use ldc_batch::jsonin::Value;
use ldc_batch::{JobSpec, SPEC_VERSION};
use ldc_sim::json::Obj;

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Solve one job. `id` is an opaque client-chosen correlation number
    /// echoed in the response **and** used as the job index in the
    /// result row (so replaying a spec file with `id = position` yields
    /// rows byte-identical to `ldc batch`).
    Solve {
        /// Correlation id, echoed back and used as the row's job index.
        id: u64,
        /// The job to run, same schema as one `ldc batch` spec entry
        /// (boxed: a spec dwarfs every other variant).
        job: Box<JobSpec>,
    },
    /// Request a deterministic telemetry registry snapshot.
    Stats,
    /// Ask the server to drain and exit.
    Shutdown,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// A completed solve: the correlation id and the raw JSONL row.
    Result {
        /// The `id` from the matching [`Request::Solve`].
        id: u64,
        /// One row of `ldc batch` output (a JSON object, no newline).
        row: String,
    },
    /// Admission queue full; retry after the hinted backoff.
    Busy {
        /// Server's backoff hint in milliseconds.
        retry_after_ms: u64,
    },
    /// A typed failure (see the module table for codes).
    Error {
        /// Machine-readable code.
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// Deterministic registry snapshot (counters/gauges/histograms).
    Stats {
        /// The registry rendered by `Registry::to_json` — raw JSON.
        det: String,
    },
}

/// A typed parse failure: `(code, message)` ready to wrap in
/// [`Response::Error`].
pub type ProtoError = (&'static str, String);

impl Request {
    /// Parse one request payload, enforcing the explicit `"v":1`.
    pub fn parse(payload: &[u8]) -> Result<Request, ProtoError> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| ("bad_frame", format!("payload is not UTF-8: {e}")))?;
        let v =
            Value::parse(text).map_err(|e| ("bad_frame", format!("payload is not JSON: {e}")))?;
        match v.get("v").and_then(Value::as_u64) {
            Some(SPEC_VERSION) => {}
            Some(other) => {
                return Err((
                    "bad_version",
                    format!("unsupported wire version {other} (supported: {SPEC_VERSION})"),
                ))
            }
            None => {
                return Err((
                    "bad_version",
                    "wire frames must carry an explicit numeric \"v\"".to_string(),
                ))
            }
        }
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| ("unknown_type", "missing string field \"type\"".to_string()))?;
        match ty {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "solve" => {
                let id = v
                    .get("id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| ("bad_request", "solve needs a numeric \"id\"".to_string()))?;
                let job = v
                    .require("job")
                    .and_then(JobSpec::from_json)
                    .map_err(|e| ("bad_request", format!("bad job: {e}")))?;
                Ok(Request::Solve {
                    id,
                    job: Box::new(job),
                })
            }
            other => Err((
                "unknown_type",
                format!(
                    "unknown request type {:?} (expected ping|solve|stats|shutdown)",
                    other
                ),
            )),
        }
    }

    /// Render this request as a wire payload (version first).
    pub fn render(&self) -> String {
        match self {
            Request::Ping => envelope("ping").finish(),
            Request::Stats => envelope("stats").finish(),
            Request::Shutdown => envelope("shutdown").finish(),
            Request::Solve { id, job } => envelope("solve")
                .u64("id", *id)
                .raw("job", &job.to_json())
                .finish(),
        }
    }
}

impl Response {
    /// Parse one response payload (used by clients; also version-checked).
    pub fn parse(payload: &[u8]) -> Result<Response, ProtoError> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| ("bad_frame", format!("payload is not UTF-8: {e}")))?;
        if let Some((id, row)) = Response::split_result(text) {
            return Ok(Response::Result {
                id,
                row: row.to_string(),
            });
        }
        let v =
            Value::parse(text).map_err(|e| ("bad_frame", format!("payload is not JSON: {e}")))?;
        match v.get("v").and_then(Value::as_u64) {
            Some(SPEC_VERSION) => {}
            _ => return Err(("bad_version", "response missing \"v\":1".to_string())),
        }
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| ("unknown_type", "missing string field \"type\"".to_string()))?;
        match ty {
            "pong" => Ok(Response::Pong),
            "busy" => Ok(Response::Busy {
                retry_after_ms: v
                    .get("retry_after_ms")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| ("bad_request", "busy needs retry_after_ms".to_string()))?,
            }),
            "error" => {
                let field = |k: &str| {
                    v.get(k)
                        .and_then(Value::as_str)
                        .map(str::to_string)
                        .ok_or(("bad_request", format!("error needs string {k:?}")))
                };
                Ok(Response::Error {
                    code: field("code")?,
                    message: field("message")?,
                })
            }
            "stats" => {
                // Like result rows, the det snapshot is the raw final
                // member; recover it by slicing.
                const PREFIX: &str = "{\"v\":1,\"type\":\"stats\",\"det\":";
                let det = text
                    .strip_prefix(PREFIX)
                    .and_then(|rest| rest.strip_suffix('}'))
                    .ok_or(("bad_frame", "malformed stats envelope".to_string()))?;
                Ok(Response::Stats {
                    det: det.to_string(),
                })
            }
            other => Err(("unknown_type", format!("unknown response type {other:?}"))),
        }
    }

    /// Render this response as a wire payload (version first; `row` and
    /// `det` last and raw, per the module contract).
    pub fn render(&self) -> String {
        match self {
            Response::Pong => envelope("pong").finish(),
            Response::Result { id, row } => {
                envelope("result").u64("id", *id).raw("row", row).finish()
            }
            Response::Busy { retry_after_ms } => envelope("busy")
                .u64("retry_after_ms", *retry_after_ms)
                .finish(),
            Response::Error { code, message } => envelope("error")
                .str("code", code)
                .str("message", message)
                .finish(),
            Response::Stats { det } => envelope("stats").raw("det", det).finish(),
        }
    }

    /// If `text` is a `result` envelope, split it into `(id, row bytes)`
    /// without JSON re-serialisation. The row is the final member, so
    /// the slice is exact: everything between `"row":` and the closing
    /// brace of the envelope.
    pub fn split_result(text: &str) -> Option<(u64, &str)> {
        const HEAD: &str = "{\"v\":1,\"type\":\"result\",\"id\":";
        let rest = text.strip_prefix(HEAD)?;
        let comma = rest.find(',')?;
        let id: u64 = rest[..comma].parse().ok()?;
        let row = rest[comma + 1..]
            .strip_prefix("\"row\":")?
            .strip_suffix('}')?;
        Some((id, row))
    }
}

/// Shorthand for typed-error responses from a [`ProtoError`].
pub fn error_response((code, message): ProtoError) -> Response {
    Response::Error {
        code: code.to_string(),
        message,
    }
}

fn envelope(ty: &str) -> Obj {
    Obj::new().u64("v", SPEC_VERSION).str("type", ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldc_batch::parse_spec_file;

    fn sample_job() -> JobSpec {
        parse_spec_file(r#"[{"graph":{"family":"ring","n":8},"algorithm":"congest"}]"#)
            .unwrap()
            .remove(0)
    }

    #[test]
    fn requests_round_trip_through_render_and_parse() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Solve {
                id: 42,
                job: Box::new(sample_job()),
            },
        ];
        for req in reqs {
            let bytes = req.render();
            assert!(bytes.starts_with("{\"v\":1,"), "version leads: {bytes}");
            assert_eq!(Request::parse(bytes.as_bytes()).unwrap(), req);
        }
    }

    #[test]
    fn version_is_mandatory_and_checked_on_the_wire() {
        let (code, _) = Request::parse(b"{\"type\":\"ping\"}").unwrap_err();
        assert_eq!(code, "bad_version");
        let (code, _) = Request::parse(b"{\"v\":2,\"type\":\"ping\"}").unwrap_err();
        assert_eq!(code, "bad_version");
        let (code, _) = Request::parse(b"{\"v\":\"one\",\"type\":\"ping\"}").unwrap_err();
        assert_eq!(code, "bad_version");
    }

    #[test]
    fn malformed_payloads_map_to_typed_codes() {
        let cases: [(&[u8], &str); 5] = [
            (b"\xff\xfe", "bad_frame"),
            (b"not json", "bad_frame"),
            (b"{\"v\":1}", "unknown_type"),
            (b"{\"v\":1,\"type\":\"dance\"}", "unknown_type"),
            (
                b"{\"v\":1,\"type\":\"solve\",\"id\":1,\"job\":{\"algorithm\":\"congest\"}}",
                "bad_request",
            ),
        ];
        for (payload, want) in cases {
            let (code, _) = Request::parse(payload).unwrap_err();
            assert_eq!(code, want, "payload {:?}", String::from_utf8_lossy(payload));
        }
        // solve without an id is also bad_request
        let (code, _) = Request::parse(b"{\"v\":1,\"type\":\"solve\",\"job\":{}}").unwrap_err();
        assert_eq!(code, "bad_request");
    }

    #[test]
    fn result_rows_survive_the_envelope_byte_for_byte() {
        let row = r#"{"job":7,"spec":{"v":1,"graph":{"family":"ring","n":8}},"status":"ok","weird":" \" }{"}"#;
        let resp = Response::Result {
            id: 7,
            row: row.to_string(),
        };
        let bytes = resp.render();
        let (id, sliced) = Response::split_result(&bytes).unwrap();
        assert_eq!(id, 7);
        assert_eq!(sliced, row);
        assert_eq!(Response::parse(bytes.as_bytes()).unwrap(), resp);
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Pong,
            Response::Busy { retry_after_ms: 50 },
            Response::Error {
                code: "draining".into(),
                message: "shutting down".into(),
            },
            Response::Stats {
                det: "{\"counters\":{},\"gauges\":{},\"histograms\":{}}".into(),
            },
        ];
        for resp in resps {
            let bytes = resp.render();
            assert!(bytes.starts_with("{\"v\":1,"), "version leads: {bytes}");
            assert_eq!(Response::parse(bytes.as_bytes()).unwrap(), resp);
        }
    }
}
