//! Integration tests for the telemetry layer (DESIGN.md §12): manifest
//! round-trips through the JSON reader, registry snapshots that must stay
//! byte-identical across shard counts and exec modes, and the
//! `strip_timing` contract the CI byte-diff job relies on.

use ldc::batch::jsonin::Value;
use ldc::batch::{Algorithm, Fleet, GraphSource, JobSpec, ListSpec};
use ldc::classic;
use ldc::graph::generators;
use ldc::sim::json::Obj;
use ldc::sim::telemetry::{strip_timing, EventSink, Registry, RunManifest};
use ldc::sim::{Bandwidth, ExecMode, Network};

fn sample_jobs() -> Vec<JobSpec> {
    let regular = GraphSource::Regular {
        n: 40,
        d: 4,
        seed: 2,
    };
    vec![
        JobSpec {
            graph: GraphSource::Ring { n: 24 },
            algorithm: Algorithm::Congest,
            lists: ListSpec::default(),
            seed: 1,
            faults: None,
        },
        JobSpec {
            graph: regular.clone(),
            algorithm: Algorithm::Congest,
            lists: ListSpec::default(),
            seed: 1,
            faults: None,
        },
        JobSpec {
            graph: regular,
            algorithm: Algorithm::EdgeColoring,
            lists: ListSpec::default(),
            seed: 3,
            faults: None,
        },
    ]
}

#[test]
fn manifest_round_trips_through_jsonin() {
    let m = RunManifest {
        commit: "0123456789abcdef0123456789abcdef01234567".into(),
        rustc: "rustc 1.75.0 (82e1608df 2023-12-21)".into(),
        threads: 8,
        exec_mode: "pooled".into(),
        seed: 42,
        workload: "ci/batch_smoke.json".into(),
    };
    let v = Value::parse(&m.to_json()).expect("manifest JSON parses");
    let back = RunManifest {
        commit: v.get("commit").and_then(Value::as_str).unwrap().into(),
        rustc: v.get("rustc").and_then(Value::as_str).unwrap().into(),
        threads: v.get("threads").and_then(Value::as_u64).unwrap(),
        exec_mode: v.get("exec_mode").and_then(Value::as_str).unwrap().into(),
        seed: v.get("seed").and_then(Value::as_u64).unwrap(),
        workload: v.get("workload").and_then(Value::as_str).unwrap().into(),
    };
    assert_eq!(back, m, "every field survives the round trip");
    // Re-rendering the parsed manifest is byte-identical: the schema is
    // closed, so history rows can be diffed textually.
    assert_eq!(back.to_json(), m.to_json());
}

#[test]
fn fleet_registry_snapshot_is_shard_invariant() {
    let jobs = sample_jobs();
    let baseline = Fleet::new(1).run(&jobs);
    assert_eq!(baseline.summary.ok, jobs.len() as u64);
    let mut reg = Registry::new();
    baseline.telemetry(&mut reg);
    let det = reg.to_json();
    assert!(
        det.contains("fleet.jobs"),
        "registry carries fleet counters"
    );

    for shards in [2, 4, 64] {
        let run = Fleet::new(shards).run(&jobs);
        let mut reg = Registry::new();
        run.telemetry(&mut reg);
        assert_eq!(
            reg.to_json(),
            det,
            "registry snapshot differs at {shards} shards"
        );
    }
}

#[test]
fn sink_det_section_is_shard_invariant_and_timing_free() {
    // Model exactly what `ldc batch --telemetry` writes: one "fleet"
    // event whose det is the registry snapshot and whose timing section
    // holds shard count and latency percentiles. The stripped stream
    // must be byte-identical for every shard count even though the
    // timing sections differ wildly.
    let jobs = sample_jobs();
    let mut stripped: Vec<String> = Vec::new();
    for shards in [1usize, 2, 4, 64] {
        let run = Fleet::new(shards).run(&jobs);
        let mut reg = Registry::new();
        run.telemetry(&mut reg);
        let lat = run.latency_histogram();
        let mut sink = EventSink::new();
        sink.set_manifest(&RunManifest::capture("batch", 0, "sample"));
        let timing = Obj::new()
            .u64("shards", shards as u64)
            .u64("latency_p50_ns", lat.percentile(0.50))
            .u64("latency_p99_ns", lat.percentile(0.99))
            .finish();
        sink.emit("fleet", reg.to_json(), timing);
        let full = sink.to_jsonl();
        assert!(full.starts_with("{\"manifest\":"), "manifest line first");
        stripped.push(strip_timing(&full));
    }
    for (i, s) in stripped.iter().enumerate() {
        assert_eq!(s, &stripped[0], "det section differs at index {i}");
        assert!(!s.contains("\"timing\""), "timing leaked into det stream");
        assert!(!s.contains("\"manifest\""), "manifest leaked");
        assert!(!s.contains("latency"), "latency is timing-only");
    }
}

#[test]
fn registry_snapshot_identical_across_exec_modes() {
    let g = generators::random_regular(64, 4, 9);
    let mut snapshots: Vec<String> = Vec::new();
    for mode in [ExecMode::Sequential, ExecMode::Pooled, ExecMode::Scoped] {
        let mut net = Network::new(&g, Bandwidth::congest_log(g.num_nodes(), 16));
        net.set_exec_mode(mode);
        net.set_parallel_threshold(0);
        let lin = classic::linial_coloring(&mut net, None).expect("linial succeeds");
        let lists: Vec<Vec<u64>> = g
            .nodes()
            .map(|_| (0..g.max_degree() as u64 + 1).collect())
            .collect();
        classic::reduction::class_iteration_list_coloring(&mut net, &lin, &lists)
            .expect("reduction succeeds");
        let mut reg = Registry::new();
        reg.observe_metrics("engine", net.metrics());
        snapshots.push(reg.to_json());
    }
    assert_eq!(snapshots[0], snapshots[1], "pooled differs from sequential");
    assert_eq!(snapshots[0], snapshots[2], "scoped differs from sequential");
    assert!(snapshots[0].contains("engine.rounds"));
    assert!(snapshots[0].contains("engine.round_bits"));
}
