//! End-to-end integration tests spanning all crates: the full Theorem 1.4
//! pipeline, Theorem 1.3 on heterogeneous instances, baseline agreement,
//! and cross-validation of the distributed outputs against the sequential
//! existence solvers.

use ldc::classic;
use ldc::core::arbdefective::{solve_list_arbdefective, ArbConfig, Substrate};
use ldc::core::colorspace::Theorem11Solver;
use ldc::core::congest::{congest_degree_plus_one, CongestBranch, CongestConfig};
use ldc::core::existence::solve_ldc;
use ldc::core::params::practical_kappa;
use ldc::core::validate::{validate_arbdefective, validate_ldc, validate_proper_list_coloring};
use ldc::core::{ColorSpace, DefectList, LdcInstance, ParamProfile, SolveOptions};
use ldc::graph::{generators, Graph, ProperColoring};
use ldc::sim::{Bandwidth, Network};

fn degree_plus_one_lists(g: &Graph, space: u64, salt: u64) -> Vec<Vec<u64>> {
    g.nodes()
        .map(|v| {
            let need = g.degree(v) + 1;
            let mut l: Vec<u64> = (0..need as u64)
                .map(|i| (u64::from(v) * 29 + i * 83 + salt) % space)
                .collect();
            l.sort_unstable();
            l.dedup();
            let mut c = 0;
            while l.len() < need {
                if !l.contains(&c) {
                    l.push(c);
                }
                c += 1;
            }
            l.sort_unstable();
            l
        })
        .collect()
}

#[test]
fn theorem_1_4_across_graph_families() {
    let graphs: Vec<(&str, Graph)> = vec![
        ("ring", generators::ring(128)),
        ("torus", generators::torus(10, 12)),
        ("regular-8", generators::random_regular(180, 8, 3)),
        ("gnp", generators::gnp(160, 0.05, 4)),
        ("tree", generators::complete_tree(150, 3)),
        ("power-law", generators::preferential_attachment(150, 3, 5)),
        ("lollipop", generators::lollipop(80, 12)),
    ];
    for (name, g) in graphs {
        let space = 4 * (g.max_degree() as u64 + 1);
        let lists = degree_plus_one_lists(&g, space, 7);
        let (colors, report) = congest_degree_plus_one(
            &g,
            space,
            &lists,
            &CongestConfig::default(),
            &SolveOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        validate_proper_list_coloring(&g, &lists, &colors)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            report.max_message_bits <= report.bandwidth_bits,
            "{name}: {} > {}",
            report.max_message_bits,
            report.bandwidth_bits
        );
    }
}

#[test]
fn theorem_1_4_agrees_with_all_baselines_on_validity() {
    let g = generators::random_regular(200, 6, 9);
    let space = 7u64;
    let lists: Vec<Vec<u64>> = (0..200).map(|_| (0..7).collect()).collect();

    // Paper pipeline.
    let (c1, _) = congest_degree_plus_one(
        &g,
        space,
        &lists,
        &CongestConfig::default(),
        &SolveOptions::default(),
    )
    .unwrap();
    // Classic class iteration.
    let mut net = Network::new(&g, Bandwidth::congest_log(200, 8));
    let lin = classic::linial_coloring(&mut net, None).unwrap();
    let c2 = classic::reduction::class_iteration_list_coloring(&mut net, &lin, &lists).unwrap();
    // Luby.
    let mut net = Network::new(&g, Bandwidth::Local);
    let c3 = classic::luby::luby_list_coloring(&mut net, &lists, 5).unwrap();
    // LOCAL full-list greedy.
    let mut net = Network::new(&g, Bandwidth::Local);
    let c4 = classic::list_baseline::local_greedy_list_coloring(&mut net, &lists, space).unwrap();
    // Sequential greedy.
    let c5 = classic::greedy::greedy_list_coloring(&g, &lists).unwrap();

    for (i, c) in [c1, c2, c3, c4, c5].iter().enumerate() {
        validate_proper_list_coloring(&g, &lists, c).unwrap_or_else(|e| panic!("algo {i}: {e}"));
    }
}

#[test]
fn theorem_1_3_heterogeneous_defects_all_substrates() {
    let g = generators::gnp(120, 0.08, 11);
    let space = 600u64;
    // Mixed lists: a few defect-2 colors plus defect-0 fill-up so that
    // Σ(d+1) = deg+2 > deg.
    let lists: Vec<DefectList> = g
        .nodes()
        .map(|v| {
            let deg = g.degree(v) as u64;
            let twos = deg / 4;
            let zeros = deg + 2 - 3 * twos;
            let mut entries: Vec<(u64, u64)> = (0..twos)
                .map(|i| ((u64::from(v) * 7 + i * 11) % 256, 2))
                .collect();
            entries.extend((0..zeros).map(|i| (256 + ((u64::from(v) * 13 + i * 17) % 344), 0)));
            entries.sort_unstable();
            entries.dedup_by_key(|e| e.0);
            // Top up after dedup to restore the budget.
            let mut c = 0;
            while entries.iter().map(|&(_, d)| d + 1).sum::<u64>() <= deg {
                if !entries.iter().any(|&(x, _)| x == c) {
                    entries.push((c, 0));
                }
                c += 1;
            }
            DefectList::new(entries)
        })
        .collect();
    let init = ProperColoring::by_id(&g);
    let profile = ParamProfile::practical_default();
    for substrate in [
        Substrate::Sequential,
        Substrate::Randomized,
        Substrate::Bootstrap { levels: 1 },
    ] {
        let cfg = ArbConfig {
            nu: 1.0,
            kappa: practical_kappa(profile, g.max_degree() as u64, space, 120),
            substrate,
            profile,
            seed: 13,
        };
        let mut net = Network::new(&g, Bandwidth::Local);
        let (colors, orientation, _) =
            solve_list_arbdefective(&mut net, space, &lists, &init, &cfg, &Theorem11Solver)
                .unwrap_or_else(|e| panic!("{substrate:?}: {e}"));
        validate_arbdefective(&g, &lists, &colors, &orientation)
            .unwrap_or_else(|e| panic!("{substrate:?}: {e}"));
    }
}

#[test]
fn distributed_and_sequential_solvers_accept_the_same_instances() {
    // Above the existence threshold the sequential solver (Lemma A.1) must
    // succeed; the distributed OLDC machinery must then also produce a
    // coloring at least as constrained (its outputs validate under the
    // *undirected* checker when run on the bidirected view).
    let g = generators::random_regular(64, 4, 21);
    let space = ColorSpace::new(1 << 12);
    let lists: Vec<DefectList> = g
        .nodes()
        .map(|v| DefectList::uniform((0..1024u64).map(|i| (i * 3 + u64::from(v)) % (1 << 12)), 1))
        .collect();
    let inst = LdcInstance::new(&g, space, lists.clone());
    let seq = solve_ldc(&inst).unwrap();
    validate_ldc(&g, &lists, &seq.colors).unwrap();

    use ldc::core::colorspace::OldcSolver;
    use ldc::core::OldcCtx;
    use ldc::graph::DirectedView;
    let view = DirectedView::bidirected(&g);
    let init: Vec<u64> = g.nodes().map(u64::from).collect();
    let active = vec![true; 64];
    let group = vec![0u64; 64];
    let ctx = OldcCtx {
        view: &view,
        space: 1 << 12,
        init: &init,
        m: 64,
        active: &active,
        group: &group,
        profile: ParamProfile::practical_default(),
        seed: 2,
    };
    let mut net = Network::new(&g, Bandwidth::Local);
    let dist = Theorem11Solver.solve(&mut net, &ctx, &lists).unwrap();
    let dist: Vec<u64> = dist.into_iter().map(|c| c.unwrap()).collect();
    // Bidirected OLDC validity == undirected LDC validity.
    validate_ldc(&g, &lists, &dist).unwrap();
}

#[test]
fn congest_budget_failures_are_loud() {
    // A 4-bit budget cannot carry Linial's id-colors on a 1024-node graph
    // (the palette is above the O(Δ²) fixpoint, so reduction rounds *do*
    // run): the simulator must return a bandwidth error, never truncate.
    let g = generators::random_regular(1024, 4, 2);
    let mut net = Network::new(
        &g,
        Bandwidth::Congest {
            bits_per_message: 4,
        },
    );
    let err = classic::linial_coloring(&mut net, None);
    assert!(err.is_err(), "10-bit ids cannot fit 4-bit messages");
}

#[test]
fn forced_branches_both_work() {
    let g = generators::random_regular(150, 6, 31);
    let space = 7u64;
    let lists: Vec<Vec<u64>> = (0..150).map(|_| (0..7).collect()).collect();
    for branch in [CongestBranch::SqrtDelta, CongestBranch::ClassIteration] {
        let cfg = CongestConfig {
            force_branch: Some(branch),
            ..CongestConfig::default()
        };
        let (colors, report) =
            congest_degree_plus_one(&g, space, &lists, &cfg, &SolveOptions::default()).unwrap();
        validate_proper_list_coloring(&g, &lists, &colors).unwrap();
        assert_eq!(report.branch, branch);
    }
}

/// Heavy end-to-end run kept out of the default suite:
/// `cargo test --release -- --ignored` exercises Theorem 1.4 at
/// n = 20 000 with the randomized substrate.
#[test]
#[ignore]
fn theorem_1_4_at_scale() {
    let g = generators::random_regular(20_000, 10, 99);
    let space = 44;
    let lists = degree_plus_one_lists(&g, space, 3);
    let cfg = CongestConfig {
        substrate: Substrate::Randomized,
        ..CongestConfig::default()
    };
    let (colors, report) =
        congest_degree_plus_one(&g, space, &lists, &cfg, &SolveOptions::default()).unwrap();
    validate_proper_list_coloring(&g, &lists, &colors).unwrap();
    assert!(report.max_message_bits <= report.bandwidth_bits);
}
