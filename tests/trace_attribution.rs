//! Acceptance test for the phase-span tracing subsystem: tracing a **full
//! Theorem 1.4 run** on the E6 workload must produce a span tree whose
//! per-phase rounds/bits sum *exactly* to the engine `Metrics` totals —
//! including the substrate sub-network rounds that run on their own
//! `Network` inside Theorem 1.3.

use ldc::core::arbdefective::Substrate;
use ldc::core::congest::{congest_degree_plus_one, CongestBranch, CongestConfig, CongestReport};
use ldc::core::ctx::span as spans;
use ldc::core::validate::validate_proper_list_coloring;
use ldc::core::SolveOptions;
use ldc::graph::{generators, Graph};
use ldc::sim::{SpanNode, SpanTotals, Tracer};

/// The E6 list family: (deg+1)-size lists drawn from a 4(Δ+1) color space.
fn degree_plus_one_lists(g: &Graph, space: u64, salt: u64) -> Vec<Vec<u64>> {
    g.nodes()
        .map(|v| {
            let need = g.degree(v) + 1;
            let mut l: Vec<u64> = (0..need as u64)
                .map(|i| (u64::from(v) * 29 + i * 83 + salt) % space)
                .collect();
            l.sort_unstable();
            l.dedup();
            let mut c = 0;
            while l.len() < need {
                if !l.contains(&c) {
                    l.push(c);
                }
                c += 1;
            }
            l.sort_unstable();
            l
        })
        .collect()
}

/// Sum self-totals over every span — the per-phase partition view.
fn per_phase_sum(root: &SpanNode) -> SpanTotals {
    let mut acc = SpanTotals::default();
    for (_, node) in root.walk() {
        let s = node.self_totals();
        acc.rounds += s.rounds;
        acc.messages += s.messages;
        acc.total_bits += s.total_bits;
        acc.max_message_bits = acc.max_message_bits.max(s.max_message_bits);
    }
    acc
}

/// Assert the span tree is an exact partition of the report's engine
/// totals (rounds, bits, messages, max message size).
fn assert_tree_matches_report(tree: &SpanNode, rep: &CongestReport) {
    let total = tree.total();
    assert_eq!(
        total.rounds,
        rep.rounds_total() as u64,
        "subtree rounds == engine rounds"
    );
    assert_eq!(
        total.total_bits, rep.bits_total,
        "subtree bits == engine bits"
    );
    assert_eq!(
        total.messages, rep.messages_total,
        "subtree messages == engine messages"
    );
    assert_eq!(
        total.max_message_bits, rep.max_message_bits,
        "max message bits agree"
    );

    let flat = per_phase_sum(tree);
    assert_eq!(
        flat.rounds, total.rounds,
        "per-phase rounds partition the total"
    );
    assert_eq!(
        flat.total_bits, total.total_bits,
        "per-phase bits partition the total"
    );
    assert_eq!(
        flat.messages, total.messages,
        "per-phase messages partition the total"
    );
}

#[test]
fn theorem14_sqrt_delta_trace_partitions_engine_metrics() {
    // E6 sizing: n ≥ 5Δ², so Linial has room to reduce (≥ 1 round).
    let delta = 8;
    let g = generators::random_regular(5 * delta * delta, delta, 17);
    let space = 4 * (delta as u64 + 1);
    let lists = degree_plus_one_lists(&g, space, 5);
    let cfg = CongestConfig {
        force_branch: Some(CongestBranch::SqrtDelta),
        substrate: Substrate::Randomized,
        ..CongestConfig::default()
    };

    let tracer = Tracer::new();
    let (colors, rep) = congest_degree_plus_one(
        &g,
        space,
        &lists,
        &cfg,
        &SolveOptions::default().with_trace(tracer.clone()),
    )
    .unwrap();
    validate_proper_list_coloring(&g, &lists, &colors).unwrap();
    assert_eq!(rep.branch, CongestBranch::SqrtDelta);

    let tree = tracer.report();
    assert_tree_matches_report(&tree, &rep);

    // The composition is visible as spans: Theorem 1.4 wraps Linial init
    // and the Theorem 1.3 driver, whose stages hold the substrate call
    // (running on its own sub-network) and the per-bucket OLDC calls.
    let thm14 = tree.find(spans::THM14).expect("thm1.4 span");
    assert_eq!(
        thm14.total().rounds,
        tree.total().rounds,
        "all rounds under thm1.4"
    );
    let linial = tree.find(&format!("{}/{}", spans::THM14, spans::LINIAL_INIT));
    assert!(
        linial.is_some_and(|s| s.total().rounds > 0),
        "linial-init span has rounds"
    );
    let thm13 = tree
        .find(&format!("{}/{}", spans::THM14, spans::THM13))
        .expect("thm1.3 span");
    let stage1 = thm13.find(&spans::stage(1)).expect("stage[1] span");
    assert!(stage1
        .find(spans::SUBSTRATE)
        .is_some_and(|s| s.total().rounds > 0));
    assert!(stage1
        .find(spans::BUCKET_OLDC)
        .is_some_and(|s| s.total().rounds > 0));

    // The substrate rounds ran on a different Network but land in the same
    // tree; without them the partition would undercount by exactly
    // `rounds_substrate`.
    assert!(
        rep.rounds_substrate > 0,
        "E6 workload exercises the substrate"
    );
}

#[test]
fn theorem14_class_iteration_trace_partitions_engine_metrics() {
    let delta = 6;
    let g = generators::random_regular(96, delta, 3);
    let space = 4 * (delta as u64 + 1);
    let lists = degree_plus_one_lists(&g, space, 9);
    let cfg = CongestConfig {
        force_branch: Some(CongestBranch::ClassIteration),
        ..CongestConfig::default()
    };

    let tracer = Tracer::new();
    let (colors, rep) = congest_degree_plus_one(
        &g,
        space,
        &lists,
        &cfg,
        &SolveOptions::default().with_trace(tracer.clone()),
    )
    .unwrap();
    validate_proper_list_coloring(&g, &lists, &colors).unwrap();
    assert_eq!(rep.branch, CongestBranch::ClassIteration);

    let tree = tracer.report();
    assert_tree_matches_report(&tree, &rep);
    let path = format!("{}/{}", spans::THM14, spans::CLASS_ITERATION);
    assert!(tree.find(&path).is_some_and(|s| s.total().rounds > 0));
}

/// A disabled tracer must not change results: same seed, same coloring.
#[test]
fn disabled_tracer_is_transparent() {
    let delta = 6;
    let g = generators::random_regular(96, delta, 3);
    let space = 4 * (delta as u64 + 1);
    let lists = degree_plus_one_lists(&g, space, 9);
    let cfg = CongestConfig {
        force_branch: Some(CongestBranch::SqrtDelta),
        substrate: Substrate::Randomized,
        ..CongestConfig::default()
    };
    let (c1, r1) = congest_degree_plus_one(
        &g,
        space,
        &lists,
        &cfg,
        &SolveOptions::default().with_trace(Tracer::disabled()),
    )
    .unwrap();
    let (c2, r2) = congest_degree_plus_one(
        &g,
        space,
        &lists,
        &cfg,
        &SolveOptions::default().with_trace(Tracer::new()),
    )
    .unwrap();
    assert_eq!(c1, c2, "tracing must not perturb the algorithm");
    assert_eq!(r1.rounds_total(), r2.rounds_total());
    assert_eq!(r1.bits_total, r2.bits_total);
}
