//! Property-style tests for the core invariants: existence above the
//! threshold, validator/brute-force agreement, conflict-machinery algebra,
//! Euler balance, and graph invariants.
//!
//! Each property is driven by a deterministic seeded case loop (the
//! workspace builds hermetically, so no proptest): every case derives its
//! inputs from `ldc_rand::Rng`, and failures print the case seed for
//! replay.

use ldc::classic::greedy::brute_force_list_defective;
use ldc::core::conflict::{best_residue, conflict_weight, mu_g, residue_restrict};
use ldc::core::euler::{balanced_orientation, out_degrees};
use ldc::core::existence::{solve_arbdefective, solve_ldc};
use ldc::core::validate::{validate_arbdefective, validate_ldc};
use ldc::core::{ColorSpace, DefectList, LdcInstance};
use ldc::graph::{builder::from_edges, generators, GraphBuilder};
use ldc_rand::Rng;

/// A random simple graph on `2..24` nodes drawn from `r` (mirrors the old
/// proptest strategy: a multiset of unranked pair indices, deduplicated by
/// the builder).
fn arb_graph(r: &mut Rng) -> ldc::graph::Graph {
    let n = r.gen_range(2usize..24);
    let max_edges = n * (n - 1) / 2;
    let m = r.gen_range(0usize..max_edges.min(60) + 1);
    let mut b = GraphBuilder::new(n);
    for _ in 0..m {
        let idx = r.gen_range(0usize..max_edges);
        // unrank pair
        let mut u = 0usize;
        let mut rem = idx;
        loop {
            let row = n - 1 - u;
            if rem < row {
                b.add_edge(u as u32, (u + 1 + rem) as u32);
                break;
            }
            rem -= row;
            u += 1;
        }
    }
    b.build().expect("generated edges are simple")
}

/// Run `body` for `cases` deterministic cases; panics carry the case index.
fn cases(count: u64, body: impl Fn(&mut Rng)) {
    for case in 0..count {
        let mut r = Rng::seed_from_u64(0xC0FFEE ^ (case.wrapping_mul(0x9e3779b97f4a7c15)));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut r)));
        if let Err(e) = result {
            eprintln!("property failed at case {case}");
            std::panic::resume_unwind(e);
        }
    }
}

/// Lemma A.1: any instance satisfying Σ(d+1) > deg is solvable, and the
/// solution passes the exact validator.
#[test]
fn existence_above_threshold_always_solves() {
    cases(96, |r| {
        let g = arb_graph(r);
        let defect = r.gen_range(0u64..3);
        let extra = r.gen_range(1u64..4);
        let seed = r.gen_range(0u64..1000);
        let space = 64u64;
        let lists: Vec<DefectList> = g
            .nodes()
            .map(|v| {
                let deg = g.degree(v) as u64;
                let need = deg / (defect + 1) + extra; // Σ(d+1) = need·(defect+1) > deg
                DefectList::uniform(
                    (0..need)
                        .map(|i| (u64::from(v) * 7 + i * 5 + seed) % space)
                        .collect::<std::collections::BTreeSet<_>>(),
                    defect,
                )
            })
            .collect();
        // Deduplication may have shrunk lists below the threshold; skip then.
        let inst = LdcInstance::new(&g, ColorSpace::new(space), lists.clone());
        if inst.check_existence_condition().is_err() {
            return;
        }
        let sol = solve_ldc(&inst).unwrap();
        assert_eq!(validate_ldc(&g, &lists, &sol.colors), Ok(()));
    });
}

/// Lemma A.2: the arbdefective condition Σ(2d+1) > deg suffices, and the
/// produced orientation witnesses the defects.
#[test]
fn arb_existence_above_threshold() {
    cases(96, |r| {
        let g = arb_graph(r);
        let defect = r.gen_range(1u64..3);
        let space = 64u64;
        let lists: Vec<DefectList> = g
            .nodes()
            .map(|v| {
                let deg = g.degree(v) as u64;
                let need = deg / (2 * defect + 1) + 1;
                DefectList::uniform(
                    (0..need)
                        .map(|i| (u64::from(v) + i * 11) % space)
                        .collect::<std::collections::BTreeSet<_>>(),
                    defect,
                )
            })
            .collect();
        let inst = LdcInstance::new(&g, ColorSpace::new(space), lists.clone());
        if inst.check_arb_existence_condition().is_err() {
            return;
        }
        let sol = solve_arbdefective(&inst).unwrap();
        assert_eq!(
            validate_arbdefective(&g, &lists, &sol.colors, &sol.orientation),
            Ok(())
        );
    });
}

/// The validator agrees with brute force on tiny instances: whenever the
/// brute force finds no solution, the local-search precondition must fail
/// too (contrapositive of Lemma A.1).
#[test]
fn brute_force_agrees_with_lemma_a1() {
    cases(96, |r| {
        let n = r.gen_range(2usize..6);
        let colors = r.gen_range(1u64..4);
        let defect = r.gen_range(0u64..2);
        let g = generators::complete(n);
        let lists: Vec<Vec<u64>> = (0..n).map(|_| (0..colors).collect()).collect();
        let dls: Vec<DefectList> = (0..n)
            .map(|_| DefectList::uniform(0..colors, defect))
            .collect();
        let inst = LdcInstance::new(&g, ColorSpace::new(colors), dls.clone());
        let brute = brute_force_list_defective(&g, &lists, &|_, _| defect);
        if inst.check_existence_condition().is_ok() {
            // Lemma A.1 ⇒ solvable ⇒ brute force must find it too.
            assert!(brute.is_some());
            let sol = solve_ldc(&inst).unwrap();
            assert_eq!(validate_ldc(&g, &dls, &sol.colors), Ok(()));
        }
        if let Some(b) = brute {
            assert_eq!(validate_ldc(&g, &dls, &b), Ok(()));
        }
    });
}

/// Conflict weight is symmetric and matches the naive double loop.
#[test]
fn conflict_weight_symmetric_and_exact() {
    cases(96, |r| {
        let mut a: Vec<u64> = (0..r.gen_range(0usize..12))
            .map(|_| r.gen_range(0u64..64))
            .collect();
        let mut b: Vec<u64> = (0..r.gen_range(0usize..12))
            .map(|_| r.gen_range(0u64..64))
            .collect();
        let gap = r.gen_range(0u64..5);
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        let naive: u64 = a
            .iter()
            .map(|&x| b.iter().filter(|&&y| x.abs_diff(y) <= gap).count() as u64)
            .sum();
        assert_eq!(conflict_weight(&a, &b, gap), naive);
        assert_eq!(conflict_weight(&b, &a, gap), naive);
    });
}

/// μ_g over a residue-restricted list is at most 1 (the §3.2.2 trick).
#[test]
fn residue_restriction_bounds_mu() {
    cases(96, |r| {
        let count = r.gen_range(1usize..64);
        let colors: std::collections::BTreeSet<u64> =
            (0..count).map(|_| r.gen_range(0u64..512)).collect();
        let colors: Vec<u64> = colors.into_iter().collect();
        let gap = r.gen_range(1u64..6);
        let probe = r.gen_range(0u64..512);
        let a = best_residue(&colors, gap);
        let restricted = residue_restrict(&colors, a, gap);
        assert!(restricted.len() as u64 * (2 * gap + 1) + 2 * gap >= colors.len() as u64);
        assert!(mu_g(probe, &restricted, gap) <= 1);
    });
}

/// Euler orientation always balances to ⌈deg/2⌉.
#[test]
fn euler_orientation_is_balanced() {
    cases(96, |r| {
        let m = r.gen_range(0usize..40);
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| (r.gen_range(0u32..12), r.gen_range(0u32..12)))
            .filter(|&(u, v)| u != v)
            .collect();
        let fwd = balanced_orientation(12, &edges);
        let mut deg = [0usize; 12];
        for &(u, v) in &edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let out = out_degrees(12, &edges, &fwd);
        for v in 0..12 {
            assert!(out[v] <= deg[v].div_ceil(2));
        }
    });
}

/// Graph invariants: degree sum = 2m, adjacency sorted, edges shared.
#[test]
fn graph_invariants() {
    cases(96, |r| {
        let g = arb_graph(r);
        assert_eq!(g.degree_sum(), 2 * g.num_edges());
        for v in g.nodes() {
            let nb = g.neighbors(v);
            assert!(nb.windows(2).all(|w| w[0] < w[1]));
            for (&u, &e) in nb.iter().zip(g.incident_edges(v)) {
                assert_eq!(g.other_endpoint(e, v), u);
                assert!(g.has_edge(u, v));
            }
        }
    });
}

/// Message size accounting: bits_for_value is the bit length.
#[test]
fn bits_for_value_is_bit_length() {
    cases(256, |r| {
        let x = r.next_u64();
        let b = ldc::sim::bits_for_value(x);
        if x == 0 {
            assert_eq!(b, 0);
        } else {
            assert!(x >= 1u64 << (b - 1).min(63));
            assert!(b == 64 || x < 1u64 << b);
        }
    });
    assert_eq!(ldc::sim::bits_for_value(0), 0);
    assert_eq!(ldc::sim::bits_for_value(1), 1);
    assert_eq!(ldc::sim::bits_for_value(u64::MAX), 64);
}

/// DefectList masses are consistent under filtering.
#[test]
fn defect_list_mass_monotone() {
    cases(96, |r| {
        let count = r.gen_range(1usize..32);
        let entries: std::collections::BTreeMap<u64, u64> = (0..count)
            .map(|_| (r.gen_range(0u64..128), r.gen_range(0u64..8)))
            .collect();
        let cut = r.gen_range(0u64..128);
        let dl = DefectList::new(entries.into_iter().collect());
        let filtered = dl.filtered(|c, _| c < cut);
        assert!(filtered.linear_mass() <= dl.linear_mass());
        assert!(filtered.square_mass() <= dl.square_mass());
        assert!(filtered.arb_mass() <= dl.arb_mass());
        assert!(filtered.len() <= dl.len());
    });
}

/// The full Theorem 1.1 engine solves random uniform instances sized by
/// `practical_kappa`, and the output always passes the exact validator.
#[test]
fn theorem11_engine_solves_conditioned_instances() {
    cases(12, |r| {
        use ldc::core::params::practical_kappa;
        use ldc::core::ParamProfile;
        use ldc::core::{OldcInstance, SolveOptions};

        let d = r.gen_range(3usize..7);
        let defect_div = r.gen_range(2u64..4);
        let seed = r.gen_range(0u64..50);
        let n = 24 * d;
        let g = generators::random_regular(n, d, seed);
        let view = ldc::graph::DirectedView::bidirected(&g);
        let profile = ParamProfile::practical_default();
        let defect = (d as u64) / defect_div;
        let kappa = practical_kappa(profile, d as u64, 1 << 14, n as u64);
        let len =
            ((kappa * (d * d) as f64) / ((defect + 1) * (defect + 1)) as f64).ceil() as u64 * 2;
        let space = (len * 4).next_power_of_two();
        let lists: Vec<DefectList> = g
            .nodes()
            .map(|v| {
                DefectList::new(
                    (0..len)
                        .map(|i| ((i * 3 + u64::from(v) * 7) % space, defect))
                        .collect::<std::collections::BTreeMap<_, _>>()
                        .into_iter()
                        .collect(),
                )
            })
            .collect();
        let inst = OldcInstance::new(view, ColorSpace::new(space), lists);
        let opts = SolveOptions {
            seed,
            ..SolveOptions::default()
        };
        // `solve` validates internally before returning.
        let sol = inst.solve(&opts);
        assert!(sol.is_ok(), "{:?}", sol.err());
    });
}

/// Theorem 1.3 solves random (degree+1)-list instances end to end.
#[test]
fn theorem13_solves_degree_plus_one() {
    cases(12, |r| {
        use ldc::core::congest::{congest_degree_plus_one, CongestConfig};
        use ldc::core::validate::validate_proper_list_coloring;

        let p_milli = r.gen_range(30u64..90);
        let seed = r.gen_range(0u64..50);
        let n = 120;
        let g = generators::gnp(n, p_milli as f64 / 1000.0, seed);
        let space = 4 * (g.max_degree() as u64 + 1);
        let lists: Vec<Vec<u64>> = g
            .nodes()
            .map(|v| {
                let need = g.degree(v) + 1;
                let mut l: Vec<u64> = (0..need as u64)
                    .map(|i| (u64::from(v) * 31 + i * 71 + seed) % space)
                    .collect();
                l.sort_unstable();
                l.dedup();
                let mut c = 0;
                while l.len() < need {
                    if !l.contains(&c) {
                        l.push(c);
                    }
                    c += 1;
                }
                l.sort_unstable();
                l
            })
            .collect();
        let cfg = CongestConfig {
            seed,
            ..CongestConfig::default()
        };
        let (colors, rep) =
            congest_degree_plus_one(&g, space, &lists, &cfg, &ldc::core::SolveOptions::default())
                .expect("congest pipeline solves");
        assert_eq!(validate_proper_list_coloring(&g, &lists, &colors), Ok(()));
        assert!(rep.max_message_bits <= rep.bandwidth_bits);
    });
}

/// Orientation invariants: out-degrees sum to m; flipping every edge swaps
/// out-degrees; the bidirected view's β equals the degree.
#[test]
fn orientation_invariants() {
    cases(64, |r| {
        use ldc::graph::{DirectedView, Orientation};
        let g = arb_graph(r);
        let seed = r.gen_range(0u64..100);
        let o = Orientation::by_rank(&g, |v| u64::from(v).wrapping_mul(seed | 1));
        let total: usize = g.nodes().map(|v| o.out_degree(&g, v)).sum();
        assert_eq!(total, g.num_edges());
        for (e, u, v) in g.edges() {
            assert_ne!(o.is_out(&g, e, u), o.is_out(&g, e, v));
            assert_eq!(o.head(&g, e) == v, o.tail(&g, e) == u);
        }
        let dv = DirectedView::bidirected(&g);
        for v in g.nodes() {
            assert_eq!(dv.out_degree(v), g.degree(v));
            assert_eq!(dv.beta(v), g.degree(v).max(1));
        }
        let dvo = DirectedView::from_orientation(&g, &o);
        for v in g.nodes() {
            assert_eq!(dvo.out_degree(v), o.out_degree(&g, v));
            assert_eq!(dvo.out_neighbors(v).len(), o.out_degree(&g, v));
        }
    });
}

/// Edge-list I/O round-trips every generated graph.
#[test]
fn io_roundtrip() {
    cases(64, |r| {
        let g = arb_graph(r);
        let mut buf = Vec::new();
        ldc::graph::io::write_edge_list(&g, &mut buf).unwrap();
        let h = ldc::graph::io::read_edge_list(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(g, h);
    });
}

#[test]
fn pre_partitioned_groups_solve_independently() {
    // Two groups fixed by the caller (not by color-space reduction): the
    // engine must scope conflicts within groups, so colors may repeat
    // across groups even at defect 0.
    use ldc::core::colorspace::{OldcSolver, Theorem11Solver};
    use ldc::core::{DefectList, OldcCtx, ParamProfile};
    use ldc::graph::DirectedView;
    use ldc::sim::{Bandwidth, Network};

    let g = generators::complete_bipartite(8, 8);
    let view = DirectedView::bidirected(&g);
    let init: Vec<u64> = g.nodes().map(u64::from).collect();
    let active = vec![true; 16];
    // Group = side of the bipartition: each node's same-group neighbors are
    // empty (all edges cross sides), so every node is trivial and any list
    // works even at defect 0.
    let group: Vec<u64> = (0..16u64).map(|v| u64::from(v < 8)).collect();
    let ctx = OldcCtx {
        view: &view,
        space: 4,
        init: &init,
        m: 16,
        active: &active,
        group: &group,
        profile: ParamProfile::practical_default(),
        seed: 1,
    };
    let lists: Vec<DefectList> = (0..16).map(|_| DefectList::uniform(0..1, 0)).collect();
    let mut net = Network::new(&g, Bandwidth::Local);
    let colors = Theorem11Solver.solve(&mut net, &ctx, &lists).unwrap();
    // Everyone gets color 0 — legal because all conflicts are cross-group.
    assert!(colors.iter().all(|c| *c == Some(0)));
}

#[test]
fn graph_from_edges_roundtrip() {
    let g = from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
    let edges: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u, v)).collect();
    assert_eq!(edges, vec![(0, 1), (1, 2), (3, 4)]);
}
