//! Miniature *faithful* demonstrations: the zero-round `P2` construction
//! of Lemma 3.5 executed verbatim (exact greedy over the whole type
//! space), composed by hand into `P1` and the final color choice — i.e.
//! the Maus–Tonoyan pipeline exactly as the paper states it, at parameters
//! small enough to enumerate (`|𝒞| = 6`, lists of 4).
//!
//! This certifies that the production engine's seeded selection
//! (DESIGN.md §S1) substitutes a construction that genuinely exists and is
//! genuinely zero-round.

use ldc::core::conflict::{psi_g, tau_g_conflict};
use ldc::core::cover::{exact_greedy, NodeType};
use ldc::core::params::ParamProfile;
use ldc::graph::{generators, DirectedView, Orientation};
use std::collections::HashMap;

/// Build the miniature world used below.
struct Mini {
    table: HashMap<NodeType, Vec<Vec<u64>>>,
    tau: u64,
    tau_prime: u64,
}

fn mini_world() -> Mini {
    // Types: m = 2 initial colors × all 4-subsets of 𝒞 = {0..6}.
    // Family shape: K ∈ ((L choose 2) choose 2); conflict: τ = 2, τ' = 2.
    let table = exact_greedy(6, 2, 4, 2, 2, 2, 2, 0).expect("Lemma 3.5 greedy succeeds");
    Mini {
        table,
        tau: 2,
        tau_prime: 2,
    }
}

#[test]
fn p2_is_zero_round_and_psi_free() {
    let w = mini_world();
    // Every pair of assigned families is Ψ-free in both orders — the
    // defining P2 property, achieved with *no* communication because the
    // assignment is a function of the type alone.
    let all: Vec<&Vec<Vec<u64>>> = w.table.values().collect();
    for (i, k1) in all.iter().enumerate() {
        for k2 in all.iter().skip(i + 1) {
            assert!(!psi_g(k1, k2, w.tau_prime, w.tau, 0));
            assert!(!psi_g(k2, k1, w.tau_prime, w.tau, 0));
        }
    }
}

#[test]
fn p1_and_final_colors_from_the_table() {
    let w = mini_world();
    // A 4-node oriented path with β = 1 and per-node lists of 4 colors.
    let g = generators::path(4);
    let o = Orientation::forward(&g);
    let view = DirectedView::from_orientation(&g, &o);

    // Initial proper 2-coloring (path is bipartite).
    let init = [0u64, 1, 0, 1];
    let lists: [Vec<u64>; 4] = [
        vec![0, 1, 2, 3],
        vec![1, 2, 3, 4],
        vec![2, 3, 4, 5],
        vec![0, 2, 4, 5],
    ];

    // P2: each node reads its K from the (globally known) greedy table.
    let k: Vec<&Vec<Vec<u64>>> = (0..4)
        .map(|v| {
            w.table
                .get(&(init[v], lists[v].clone()))
                .expect("every type appears in the table")
        })
        .collect();

    // P1 (one round: learn out-neighbors' K): each node picks C ∈ K with no
    // τ-conflicting out-neighbor choice possible beyond the Ψ budget. Since
    // (K_v, K_u) ∉ Ψ(τ', τ), fewer than τ' = 2 members of K_v conflict with
    // K_u, so with |K_v| = 2 ≥ β·(τ'−1) + 1 … the pigeonhole of §3.1 gives
    // a conflict-free member against β = 1 out-neighbors.
    let mut c_sets: Vec<&Vec<u64>> = Vec::new();
    for v in 0..4usize {
        let out: Vec<usize> = view
            .out_neighbors(v as u32)
            .iter()
            .map(|&u| u as usize)
            .collect();
        let pick = k[v]
            .iter()
            .find(|cand| {
                out.iter()
                    .all(|&u| k[u].iter().all(|cu| !tau_g_conflict(cand, cu, w.tau, 0)))
            })
            .expect("Ψ-freeness guarantees a conflict-free member");
        c_sets.push(pick);
    }
    for v in 0..4usize {
        for &u in view.out_neighbors(v as u32).iter() {
            assert!(
                !tau_g_conflict(c_sets[v], c_sets[u as usize], w.tau, 0),
                "|C_{v} ∩ C_{u}| < τ must hold"
            );
        }
    }

    // P0 (one more round: learn out-neighbors' C): pick x ∈ C_v absent from
    // every out-neighbor's C_u — possible because |C_v| = 2 > β·(τ−1) = 1.
    let mut colors = [0u64; 4];
    for v in (0..4usize).rev() {
        let out: Vec<usize> = view
            .out_neighbors(v as u32)
            .iter()
            .map(|&u| u as usize)
            .collect();
        colors[v] = *c_sets[v]
            .iter()
            .find(|&&x| out.iter().all(|&u| !c_sets[u].contains(&x)))
            .expect("pigeonhole of §3.1");
    }
    // Proper along the orientation (defect 0 toward out-neighbors).
    for v in 0..4usize {
        assert!(lists[v].contains(&colors[v]));
        for &u in view.out_neighbors(v as u32).iter() {
            assert_ne!(colors[v], colors[u as usize]);
        }
    }
}

#[test]
fn faithful_profile_formulas_are_exercised() {
    // The faithful τ/τ' schedule evaluates exactly as printed in the paper
    // (Eqs. (4), (5)) and stays internally consistent: τ' = 2^{τ−⌈2h+log 2e⌉}.
    let p = ParamProfile::Faithful;
    for h in 1..6u64 {
        let tau = p.tau(h, 64, 16);
        let tau_prime = p.tau_prime(h, 64, 16);
        let drop = (2.0 * h as f64 + (2.0 * std::f64::consts::E).log2()).ceil() as u64;
        assert_eq!(tau_prime, 1u64 << (tau - drop).min(40));
        assert!(tau >= 8 * h + 16);
    }
}
