//! Integration tests for the fleet batch runner (DESIGN.md §10): shard
//! invariance of the JSONL stream, graph-cache accounting, and fault
//! roll-up arithmetic.

use ldc::batch::{Algorithm, FaultSpec, Fleet, GraphSource, JobSpec, ListSpec};
use ldc::core::FaultStats;

/// A mixed job list: repeated topologies, two algorithms, one faulted job.
fn mixed_jobs() -> Vec<JobSpec> {
    let regular = GraphSource::Regular {
        n: 40,
        d: 4,
        seed: 2,
    };
    let mut jobs = vec![
        JobSpec {
            graph: GraphSource::Ring { n: 24 },
            algorithm: Algorithm::Congest,
            lists: ListSpec::default(),
            seed: 1,
            faults: None,
        },
        JobSpec {
            graph: regular.clone(),
            algorithm: Algorithm::Congest,
            lists: ListSpec::default(),
            seed: 1,
            faults: None,
        },
        JobSpec {
            graph: regular.clone(),
            algorithm: Algorithm::EdgeColoring,
            lists: ListSpec::default(),
            seed: 3,
            faults: None,
        },
        JobSpec {
            graph: regular.clone(),
            algorithm: Algorithm::Congest,
            lists: ListSpec::default(),
            seed: 2,
            faults: Some(FaultSpec {
                seed: 0xBA7C4,
                drop_milli: 50,
                max_retries: 8,
                ..FaultSpec::default()
            }),
        },
    ];
    jobs.push(JobSpec {
        graph: GraphSource::Torus { rows: 5, cols: 6 },
        algorithm: Algorithm::Congest,
        lists: ListSpec::default(),
        seed: 4,
        faults: None,
    });
    jobs
}

#[test]
fn jsonl_stream_is_byte_identical_across_shard_counts() {
    let jobs = mixed_jobs();
    let baseline = Fleet::new(1).run(&jobs);
    assert_eq!(baseline.summary.ok, jobs.len() as u64, "all jobs solve");
    for shards in [2, 3, 4, 64] {
        let run = Fleet::new(shards).run(&jobs);
        assert_eq!(
            run.to_jsonl(),
            baseline.to_jsonl(),
            "stream differs at {shards} shards"
        );
        assert_eq!(run.summary, baseline.summary);
    }
}

#[test]
fn graph_cache_counts_hits_and_reuses_builds() {
    let jobs = mixed_jobs();
    let run = Fleet::new(2).run(&jobs);
    // 3 distinct sources (ring, regular, torus); the regular graph is
    // named by 3 jobs, so exactly 2 of the 5 resolutions are hits.
    assert_eq!(run.summary.cache_misses, 3);
    assert_eq!(run.summary.cache_hits, 2);

    // A job running on a cached graph behaves exactly like the same job
    // running alone on a freshly built graph.
    let alone = Fleet::new(1).run(&jobs[1..2]);
    assert_eq!(alone.summary.cache_hits, 0);
    let cached = &run.outcomes[1];
    let fresh = &alone.outcomes[0];
    assert_eq!(cached.rounds, fresh.rounds);
    assert_eq!(cached.total_bits, fresh.total_bits);
    assert_eq!(cached.colors_used, fresh.colors_used);
    assert!(cached.valid && fresh.valid);
}

#[test]
fn faulted_fleet_rollup_sums_per_job_reports() {
    // Two resilient OLDC jobs under transient errors: the fleet summary's
    // restart and fault counters must equal the sum of the per-job
    // `ResilientReport`s (the all-attempts totals, not the final attempt).
    let lists = ListSpec::Uniform {
        space: 1 << 13,
        len: 3000,
        defect: 3,
        salt: 0,
    };
    let jobs: Vec<JobSpec> = [5u64, 6]
        .iter()
        .map(|&seed| JobSpec {
            graph: GraphSource::Regular { n: 80, d: 6, seed },
            algorithm: Algorithm::Oldc,
            lists: lists.clone(),
            seed: 1,
            faults: Some(FaultSpec {
                seed: 0xE44 + seed,
                error_milli: 300,
                max_retries: 6,
                max_restarts: 8,
                ..FaultSpec::default()
            }),
        })
        .collect();
    let run = Fleet::new(2).run(&jobs);
    assert_eq!(run.summary.ok, 2, "both resilient solves succeed");

    let mut restarts = 0u64;
    let mut faults = FaultStats::default();
    let mut saw_retries = false;
    for o in &run.outcomes {
        let r = o.resilient.as_ref().expect("faulted job carries a report");
        restarts += u64::from(r.restarts);
        faults.absorb(&r.faults);
        saw_retries |= r.faults.rounds_retried > 0;
        assert!(o.row.contains("\"resilient\":"), "row echoes the report");
    }
    assert!(saw_retries, "a 30% error rate must trigger retries");
    assert_eq!(run.summary.restarts, restarts);
    assert_eq!(run.summary.faults, faults);
}
